"""Recorder snapshot/merge semantics: the cross-process obs contract.

A worker recorder's ``snapshot()`` must fold into the parent via
``merge_snapshot()`` so that counters add, gauges follow merge order,
span trees graft under the parent's open span, and histograms merge
exactly (or deterministically when reservoirs overflow).
"""

import pytest

from repro.obs.metrics import Histogram
from repro.obs.recorder import Recorder


def _worker_recorder() -> Recorder:
    """A recorder that pretends to be a worker mid-unit."""
    worker = Recorder(enabled=True, clock=_FakeClock())
    with worker.span("unit", uid="w/0"):
        with worker.span("inner"):
            worker.incr("work.done", 2)
        worker.incr_keyed("edges", "a->b", 5)
        worker.gauge("last.t", 3)
        worker.observe("sizes", 10.0)
        with worker.time("solve"):
            pass
    return worker


class _FakeClock:
    """Deterministic monotonically increasing clock."""

    def __init__(self):
        self._now = 0.0

    def __call__(self) -> float:
        self._now += 1.0
        return self._now


class TestSnapshot:
    def test_snapshot_is_json_native(self):
        import json

        snapshot = _worker_recorder().snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_snapshot_excludes_open_spans(self):
        recorder = Recorder(enabled=True)
        live = recorder.span("open")
        live.__enter__()
        try:
            # The open span is in ``spans`` but the merge-side contract
            # is exercised by workers only after every span has closed.
            assert recorder._stack
        finally:
            live.__exit__(None, None, None)
        assert not recorder._stack


class TestMergeSnapshot:
    def test_counters_add_and_keyed_counters_add(self):
        parent = Recorder(enabled=True)
        parent.incr("work.done", 1)
        parent.incr_keyed("edges", "a->b", 1)
        snapshot = _worker_recorder().snapshot()
        parent.merge_snapshot(snapshot)
        parent.merge_snapshot(snapshot)
        assert parent.counters["work.done"] == 5
        assert parent.keyed_counters["edges"]["a->b"] == 11

    def test_gauges_last_merge_wins(self):
        parent = Recorder(enabled=True)
        parent.gauge("last.t", 99)
        parent.merge_snapshot(_worker_recorder().snapshot())
        assert parent.gauges["last.t"] == 3

    def test_spans_graft_under_open_span(self):
        parent = Recorder(enabled=True)
        with parent.span("parallel.run"):
            parent.merge_snapshot(_worker_recorder().snapshot())
        root = parent.spans[0]
        grafted = [r for r in parent.spans if r.name == "unit"]
        assert len(grafted) == 1
        assert grafted[0].parent == root.index
        assert grafted[0].depth == root.depth + 1
        inner = [r for r in parent.spans if r.name == "inner"]
        assert inner[0].parent == grafted[0].index
        assert inner[0].depth == grafted[0].depth + 1

    def test_spans_graft_as_roots_without_open_span(self):
        parent = Recorder(enabled=True)
        parent.merge_snapshot(_worker_recorder().snapshot())
        grafted = [r for r in parent.spans if r.name == "unit"]
        assert grafted[0].parent is None
        assert grafted[0].depth == 0

    def test_merged_spans_reach_sinks(self):
        closed = []

        class _Sink:
            def on_span(self, record):
                closed.append(record.name)

            def on_flush(self, recorder):
                pass

        parent = Recorder(enabled=True)
        parent.add_sink(_Sink())
        parent.merge_snapshot(_worker_recorder().snapshot())
        assert sorted(closed) == ["inner", "unit"]

    def test_timers_and_histograms_merge(self):
        parent = Recorder(enabled=True)
        parent.observe("sizes", 4.0)
        parent.merge_snapshot(_worker_recorder().snapshot())
        sizes = parent.histograms["sizes"].summary()
        assert sizes["count"] == 2
        assert sizes["min"] == 4.0
        assert sizes["max"] == 10.0
        assert parent.timers["solve"].summary()["count"] == 1

    def test_merge_roundtrip_equals_direct_recording(self):
        direct = Recorder(enabled=True)
        direct.incr("a", 1)
        direct.incr("a", 2)
        via_merge = Recorder(enabled=True)
        worker = Recorder(enabled=True)
        worker.incr("a", 1)
        via_merge.merge_snapshot(worker.snapshot())
        worker2 = Recorder(enabled=True)
        worker2.incr("a", 2)
        via_merge.merge_snapshot(worker2.snapshot())
        assert via_merge.counters == direct.counters


class TestSpanTracks:
    def test_merge_tags_grafted_spans_with_the_track(self):
        parent = Recorder(enabled=True)
        with parent.span("parallel.run"):
            parent.merge_snapshot(_worker_recorder().snapshot(), track="unit/0")
        grafted = [r for r in parent.spans if r.name in ("unit", "inner")]
        assert len(grafted) == 2
        assert all(record.track == "unit/0" for record in grafted)
        local = [r for r in parent.spans if r.name == "parallel.run"]
        assert local[0].track is None

    def test_span_tracks_first_appearance_order(self):
        parent = Recorder(enabled=True)
        with parent.span("parallel.run"):
            parent.merge_snapshot(_worker_recorder().snapshot(), track="unit/0")
            parent.merge_snapshot(_worker_recorder().snapshot(), track="unit/1")
        assert parent.span_tracks() == [None, "unit/0", "unit/1"]

    def test_already_tagged_spans_keep_their_track(self):
        # A snapshot whose spans already carry a track (e.g. a worker
        # that itself merged sub-workers) is not relabelled.
        snapshot = _worker_recorder().snapshot()
        for event in snapshot["spans"]:
            event["track"] = "nested/x"
        parent = Recorder(enabled=True)
        parent.merge_snapshot(snapshot, track="unit/0")
        assert {r.track for r in parent.spans} == {"nested/x"}

    def test_merge_without_track_stays_on_the_in_process_lane(self):
        parent = Recorder(enabled=True)
        parent.merge_snapshot(_worker_recorder().snapshot())
        assert parent.span_tracks() == [None]

    def test_process_pool_tags_tracks_with_unit_uids(self):
        from repro import obs
        from repro.parallel import ProcessPoolBackend, WorkUnit
        from repro.parallel import backends as backends_module

        if backends_module._multiprocessing_context() is None:
            pytest.skip("multiprocessing unavailable on this platform")
        units = [
            WorkUnit(uid=f"probe/{x}", kind="probe", kwargs={"x": x})
            for x in (2.0, 3.0)
        ]
        with obs.recording() as recorder:
            results = ProcessPoolBackend(2).run(units, chunk_size=1)
            tracks = set(recorder.span_tracks())
        assert results == [4.0, 9.0]
        assert {"probe/2.0", "probe/3.0"} <= tracks


class TestHistogramStateMerge:
    def test_exact_merge_when_reservoirs_fit(self):
        left = Histogram(reservoir_size=100)
        right = Histogram(reservoir_size=100)
        for value in (1.0, 2.0, 3.0):
            left.observe(value)
        for value in (10.0, 20.0):
            right.observe(value)
        left.merge_state(right.to_state())
        summary = left.summary()
        assert summary["count"] == 5
        assert summary["min"] == 1.0
        assert summary["max"] == 20.0
        assert summary["mean"] == pytest.approx(36.0 / 5)

    def test_overflow_merge_is_deterministic_and_bounded(self):
        def build():
            a = Histogram(reservoir_size=8)
            b = Histogram(reservoir_size=8)
            for i in range(20):
                a.observe(float(i))
            for i in range(30):
                b.observe(float(100 + i))
            a.merge_state(b.to_state())
            return a

        first, second = build(), build()
        assert first.to_state() == second.to_state()
        assert len(first.to_state()["reservoir"]) <= 8
        summary = first.summary()
        assert summary["count"] == 50
        assert summary["min"] == 0.0
        assert summary["max"] == 129.0

    def test_merge_into_empty_histogram(self):
        target = Histogram(reservoir_size=4)
        source = Histogram(reservoir_size=4)
        for value in (5.0, 6.0):
            source.observe(value)
        target.merge_state(source.to_state())
        assert target.summary()["count"] == 2
        assert target.summary()["mean"] == pytest.approx(5.5)


class TestHardReset:
    def test_abandons_open_spans_and_drops_sinks(self):
        recorder = Recorder(enabled=True)
        recorder.add_sink(object())
        live = recorder.span("stuck")
        live.__enter__()
        recorder.hard_reset()
        assert recorder._stack == []
        assert recorder._sinks == []
        assert recorder.spans == []
        assert not recorder.enabled

    def test_keep_sinks(self):
        recorder = Recorder(enabled=True)
        sentinel = object()
        recorder.add_sink(sentinel)
        recorder.hard_reset(keep_sinks=True)
        assert recorder._sinks == [sentinel]
