"""Tests for the text renderers used by the figure benches."""

from repro.graphs import (
    WeightedGraph,
    adjacency_listing,
    clique,
    cross_group_edge_counts,
    cross_group_table,
    format_node,
    group_summary,
    render_figure,
)


class TestFormatNode:
    def test_tagged_tuple(self):
        assert format_node(("A", 0, 2)) == "A[0,2]"

    def test_code_node(self):
        assert format_node(("C", 1, 0, 2)) == "C[1,0,2]"

    def test_plain_value_falls_back_to_repr(self):
        assert format_node(7) == "7"

    def test_untagged_tuple_falls_back(self):
        assert format_node((1, 2)) == "(1, 2)"


class TestAdjacencyListing:
    def test_lists_weights_and_neighbors(self):
        graph = WeightedGraph(nodes={"a": 2})
        graph.add_edge("a", "b")
        listing = adjacency_listing(graph)
        assert "'a' (w=2): 'b'" in listing

    def test_max_nodes_truncates(self):
        graph = clique(list(range(10)))
        listing = adjacency_listing(graph, max_nodes=2)
        assert len(listing.splitlines()) == 2


class TestGroupSummary:
    def test_detects_clique(self):
        graph = clique(["a", "b", "c"])
        summary = group_summary(graph, {"G": ["a", "b", "c"]})
        assert "clique" in summary
        assert "3 nodes" in summary

    def test_detects_independent(self):
        graph = WeightedGraph(nodes=["a", "b"])
        summary = group_summary(graph, {"G": ["a", "b"]})
        assert "independent" in summary

    def test_detects_mixed(self):
        graph = WeightedGraph(edges=[("a", "b")])
        graph.add_node("c")
        summary = group_summary(graph, {"G": ["a", "b", "c"]})
        assert "mixed" in summary


class TestCrossGroups:
    def test_counts(self):
        graph = WeightedGraph(edges=[("a", "x"), ("b", "x"), ("a", "b")])
        counts = cross_group_edge_counts(
            graph, {"L": ["a", "b"], "R": ["x"]}
        )
        assert counts == {("L", "R"): 2}

    def test_table_contains_counts(self):
        graph = WeightedGraph(edges=[("a", "x")])
        table = cross_group_table(graph, {"L": ["a"], "R": ["x"]})
        assert "L -- R" in table

    def test_table_empty(self):
        graph = WeightedGraph(nodes=["a"])
        assert "no cross-group edges" in cross_group_table(graph, {"L": ["a"]})


class TestRenderFigure:
    def test_contains_title_counts_and_notes(self):
        graph = clique(["a", "b"])
        text = render_figure(
            "Figure X", graph, {"G": ["a", "b"]}, notes=["hello"]
        )
        assert "Figure X" in text
        assert "|V| = 2" in text
        assert "hello" in text
