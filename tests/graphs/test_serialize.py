"""Tests for graph JSON (de)serialization."""

import json
import random

import pytest

from repro.commcc import uniquely_intersecting_inputs
from repro.gadgets import (
    GadgetParameters,
    LinearConstruction,
    QuadraticConstruction,
)
from repro.graphs import (
    WeightedGraph,
    decode_node,
    encode_node,
    graph_from_dict,
    graph_from_json,
    graph_to_dict,
    graph_to_json,
    random_graph,
)


class TestRoundTrip:
    def test_simple_graph(self):
        graph = WeightedGraph(nodes={"a": 2, "b": 1})
        graph.add_edge("a", "b")
        assert graph_from_json(graph_to_json(graph)) == graph

    def test_tuple_node_ids(self):
        graph = WeightedGraph()
        graph.add_edge(("A", 0, 1), ("C", 0, 2, 1))
        restored = graph_from_json(graph_to_json(graph))
        assert restored == graph
        assert restored.has_edge(("A", 0, 1), ("C", 0, 2, 1))

    def test_nested_tuples(self):
        graph = WeightedGraph(nodes=[("U", ("A", 0, 1), 2)])
        restored = graph_from_json(graph_to_json(graph))
        assert ("U", ("A", 0, 1), 2) in restored

    @pytest.mark.parametrize("seed", range(4))
    def test_random_graphs(self, seed):
        graph = random_graph(
            15, 0.4, rng=random.Random(seed), weight_range=(1, 9)
        )
        assert graph_from_json(graph_to_json(graph)) == graph

    def test_gadget_instance(self):
        construction = LinearConstruction(GadgetParameters(ell=2, alpha=1, t=2))
        restored = graph_from_json(graph_to_json(construction.graph))
        assert restored == construction.graph

    def test_empty_graph(self):
        assert graph_from_json(graph_to_json(WeightedGraph())) == WeightedGraph()


class TestWeightedGadgetRoundTrip:
    """The result store leans on these exact round trips (docs/CACHING.md)."""

    def test_linear_instance_with_input_weights(self):
        params = GadgetParameters(ell=2, alpha=1, t=2)
        construction = LinearConstruction(params)
        inputs = uniquely_intersecting_inputs(
            params.k, params.t, rng=random.Random(7)
        )
        instance = construction.apply_inputs(inputs)
        restored = graph_from_json(graph_to_json(instance))
        assert restored == instance
        # The input-dependent ell weights survive, not just topology.
        for node in instance.nodes():
            assert restored.weight(node) == instance.weight(node)
        assert any(
            instance.weight(construction.a_node(i, m)) == params.ell
            for i in range(params.t)
            for m in range(params.k)
        )

    def test_quadratic_fixed_graph(self):
        construction = QuadraticConstruction(GadgetParameters(ell=2, alpha=1, t=2))
        restored = graph_from_json(graph_to_json(construction.graph))
        assert restored == construction.graph
        assert restored.total_weight() == construction.graph.total_weight()

    def test_nontrivial_node_encodings(self):
        graph = WeightedGraph()
        nodes = [
            ("C", 0, 1, 2),
            ("mixed", True, None, 2.5),
            ("nested", ("inner", 0), "leaf"),
            "bare-string",
        ]
        for index, node in enumerate(nodes):
            graph.add_node(node, weight=index + 0.5)
        graph.add_edge(nodes[0], nodes[1])
        graph.add_edge(nodes[2], nodes[3])
        restored = graph_from_json(graph_to_json(graph))
        assert restored == graph
        for node in nodes:
            assert restored.weight(node) == graph.weight(node)

    def test_encode_decode_node_are_exact_inverses(self):
        for node in (
            "plain",
            ("A", 0, 1),
            ("nested", ("deep", ("deeper", 1)), None, True, 2.5),
        ):
            assert decode_node(encode_node(node)) == node


class TestFormat:
    def test_json_is_valid_and_sorted(self):
        graph = WeightedGraph(nodes={"b": 1, "a": 2})
        parsed = json.loads(graph_to_json(graph))
        assert set(parsed) == {"nodes", "edges"}

    def test_weights_preserved(self):
        graph = WeightedGraph(nodes={"x": 7})
        assert graph_from_dict(graph_to_dict(graph)).weight("x") == 7

    def test_unserializable_node_rejected(self):
        graph = WeightedGraph(nodes=[frozenset({1})])
        with pytest.raises(TypeError):
            graph_to_dict(graph)

    def test_malformed_encoded_node_rejected(self):
        with pytest.raises(ValueError):
            graph_from_dict({"nodes": [{"id": ["bogus"], "weight": 1}], "edges": []})
