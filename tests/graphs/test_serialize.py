"""Tests for graph JSON (de)serialization."""

import json
import random

import pytest

from repro.gadgets import GadgetParameters, LinearConstruction
from repro.graphs import (
    WeightedGraph,
    graph_from_dict,
    graph_from_json,
    graph_to_dict,
    graph_to_json,
    random_graph,
)


class TestRoundTrip:
    def test_simple_graph(self):
        graph = WeightedGraph(nodes={"a": 2, "b": 1})
        graph.add_edge("a", "b")
        assert graph_from_json(graph_to_json(graph)) == graph

    def test_tuple_node_ids(self):
        graph = WeightedGraph()
        graph.add_edge(("A", 0, 1), ("C", 0, 2, 1))
        restored = graph_from_json(graph_to_json(graph))
        assert restored == graph
        assert restored.has_edge(("A", 0, 1), ("C", 0, 2, 1))

    def test_nested_tuples(self):
        graph = WeightedGraph(nodes=[("U", ("A", 0, 1), 2)])
        restored = graph_from_json(graph_to_json(graph))
        assert ("U", ("A", 0, 1), 2) in restored

    @pytest.mark.parametrize("seed", range(4))
    def test_random_graphs(self, seed):
        graph = random_graph(
            15, 0.4, rng=random.Random(seed), weight_range=(1, 9)
        )
        assert graph_from_json(graph_to_json(graph)) == graph

    def test_gadget_instance(self):
        construction = LinearConstruction(GadgetParameters(ell=2, alpha=1, t=2))
        restored = graph_from_json(graph_to_json(construction.graph))
        assert restored == construction.graph

    def test_empty_graph(self):
        assert graph_from_json(graph_to_json(WeightedGraph())) == WeightedGraph()


class TestFormat:
    def test_json_is_valid_and_sorted(self):
        graph = WeightedGraph(nodes={"b": 1, "a": 2})
        parsed = json.loads(graph_to_json(graph))
        assert set(parsed) == {"nodes", "edges"}

    def test_weights_preserved(self):
        graph = WeightedGraph(nodes={"x": 7})
        assert graph_from_dict(graph_to_dict(graph)).weight("x") == 7

    def test_unserializable_node_rejected(self):
        graph = WeightedGraph(nodes=[frozenset({1})])
        with pytest.raises(TypeError):
            graph_to_dict(graph)

    def test_malformed_encoded_node_rejected(self):
        with pytest.raises(ValueError):
            graph_from_dict({"nodes": [{"id": ["bogus"], "weight": 1}], "edges": []})
