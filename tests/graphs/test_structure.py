"""Tests for structural graph parameters."""

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    WeightedGraph,
    clique,
    clique_cover_bound,
    core_numbers,
    count_triangles,
    cycle_graph,
    degeneracy_ordering,
    greedy_clique_cover,
    independence_number_lower_bound,
    path_graph,
    random_graph,
    star_graph,
)
from repro.maxis import max_weight_independent_set


class TestDegeneracy:
    def test_path_degeneracy_one(self):
        _, d = degeneracy_ordering(path_graph(list(range(6))))
        assert d == 1

    def test_cycle_degeneracy_two(self):
        _, d = degeneracy_ordering(cycle_graph(list(range(6))))
        assert d == 2

    def test_clique_degeneracy(self):
        _, d = degeneracy_ordering(clique(list(range(5))))
        assert d == 4

    def test_star_degeneracy_one(self):
        _, d = degeneracy_ordering(star_graph("hub", list(range(6))))
        assert d == 1

    def test_empty_graph(self):
        ordering, d = degeneracy_ordering(WeightedGraph())
        assert ordering == [] and d == 0

    def test_ordering_is_permutation(self):
        graph = random_graph(15, 0.3, rng=random.Random(1))
        ordering, _ = degeneracy_ordering(graph)
        assert sorted(map(repr, ordering)) == sorted(map(repr, graph.nodes()))

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_max_core_number(self, seed):
        graph = random_graph(18, 0.3, rng=random.Random(seed))
        _, d = degeneracy_ordering(graph)
        cores = core_numbers(graph)
        assert d == max(cores.values())


class TestCoreNumbers:
    def test_clique_cores(self):
        cores = core_numbers(clique(list(range(5))))
        assert set(cores.values()) == {4}

    def test_star_cores(self):
        cores = core_numbers(star_graph("hub", list(range(4))))
        assert cores["hub"] == 1
        assert all(cores[i] == 1 for i in range(4))

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_networkx(self, seed):
        graph = random_graph(16, 0.3, rng=random.Random(seed + 20))
        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(graph.nodes())
        nx_graph.add_edges_from(graph.edges())
        assert core_numbers(graph) == nx.core_number(nx_graph)


class TestCliqueCover:
    def test_cover_is_a_partition_of_cliques(self):
        graph = random_graph(15, 0.4, rng=random.Random(3))
        cover = greedy_clique_cover(graph)
        seen = set()
        for clique_set in cover:
            assert graph.is_clique(clique_set)
            assert not (seen & clique_set)
            seen |= clique_set
        assert seen == graph.node_set()

    def test_clique_graph_covered_by_one(self):
        assert len(greedy_clique_cover(clique(list(range(6))))) == 1

    def test_edgeless_needs_n_cliques(self):
        graph = WeightedGraph(nodes=list(range(5)))
        assert len(greedy_clique_cover(graph)) == 5

    @pytest.mark.parametrize("seed", range(4))
    def test_bound_dominates_optimum(self, seed):
        graph = random_graph(14, 0.4, rng=random.Random(seed), weight_range=(1, 6))
        assert clique_cover_bound(graph) >= max_weight_independent_set(graph).weight


class TestTriangles:
    def test_triangle_free(self):
        assert count_triangles(cycle_graph(list(range(6)))) == 0

    def test_single_triangle(self):
        assert count_triangles(clique(["a", "b", "c"])) == 1

    def test_k4_has_four(self):
        assert count_triangles(clique(list(range(4)))) == 4

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_networkx(self, seed):
        graph = random_graph(16, 0.35, rng=random.Random(seed + 80))
        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(graph.nodes())
        nx_graph.add_edges_from(graph.edges())
        assert count_triangles(graph) == sum(nx.triangles(nx_graph).values()) // 3


class TestIndependenceBound:
    def test_empty(self):
        assert independence_number_lower_bound(WeightedGraph()) == 0

    @pytest.mark.parametrize("seed", range(4))
    def test_lower_bounds_alpha(self, seed):
        graph = random_graph(14, 0.35, rng=random.Random(seed + 200))
        bound = independence_number_lower_bound(graph)
        alpha = len(max_weight_independent_set(graph).nodes)
        assert bound <= alpha


@settings(max_examples=25, deadline=None)
@given(n=st.integers(1, 14), p=st.floats(0, 1), seed=st.integers(0, 1000))
def test_hypothesis_cover_bound_vs_alpha(n, p, seed):
    graph = random_graph(n, p, rng=random.Random(seed))
    cover = greedy_clique_cover(graph)
    alpha = len(max_weight_independent_set(graph).nodes)
    assert len(cover) >= alpha
