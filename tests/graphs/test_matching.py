"""Tests for Hopcroft–Karp maximum bipartite matching."""

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    NotBipartiteError,
    WeightedGraph,
    biclique_minus_matching_edges,
    greedy_matching_size,
    is_matching,
    maximum_bipartite_matching,
    maximum_matching_size,
    random_bipartite_graph,
)


def _graph_from_edges(left_size, right_size, edges):
    graph = WeightedGraph()
    left = [("L", i) for i in range(left_size)]
    right = [("R", j) for j in range(right_size)]
    graph.add_nodes(left)
    graph.add_nodes(right)
    for i, j in edges:
        graph.add_edge(("L", i), ("R", j))
    return graph, left, right


class TestBasics:
    def test_empty_graph(self):
        graph, left, right = _graph_from_edges(3, 3, [])
        assert maximum_matching_size(graph, left, right) == 0

    def test_perfect_matching(self):
        graph, left, right = _graph_from_edges(3, 3, [(i, i) for i in range(3)])
        assert maximum_matching_size(graph, left, right) == 3

    def test_star_matches_once(self):
        graph, left, right = _graph_from_edges(1, 4, [(0, j) for j in range(4)])
        assert maximum_matching_size(graph, left, right) == 1

    def test_augmenting_path_needed(self):
        # Greedy taking (0,0) first must be undone via augmenting path.
        graph, left, right = _graph_from_edges(2, 2, [(0, 0), (0, 1), (1, 0)])
        assert maximum_matching_size(graph, left, right) == 2

    def test_matching_dict_is_symmetric(self):
        graph, left, right = _graph_from_edges(2, 2, [(0, 1), (1, 0)])
        match = maximum_bipartite_matching(graph, left, right)
        for u, v in match.items():
            assert match[v] == u

    def test_matching_uses_real_edges(self):
        graph, left, right = _graph_from_edges(3, 3, [(0, 1), (1, 2), (2, 0)])
        match = maximum_bipartite_matching(graph, left, right)
        pairs = [(u, v) for u, v in match.items() if u[0] == "L"]
        assert is_matching(graph, pairs)

    def test_overlapping_sides_raise(self):
        graph, left, right = _graph_from_edges(2, 2, [])
        with pytest.raises(NotBipartiteError):
            maximum_bipartite_matching(graph, left, left)

    def test_edge_inside_side_raises(self):
        graph, left, right = _graph_from_edges(2, 2, [])
        graph.add_edge(("L", 0), ("L", 1))
        with pytest.raises(NotBipartiteError):
            maximum_bipartite_matching(graph, left, right)

    def test_biclique_minus_matching_has_full_matching(self):
        """The Figure 2 wiring still contains a perfect matching for q >= 2."""
        for q in (2, 3, 5):
            left = [("L", r) for r in range(q)]
            right = [("R", r) for r in range(q)]
            graph = WeightedGraph(nodes=left + right)
            graph.add_edges(biclique_minus_matching_edges(left, right))
            assert maximum_matching_size(graph, left, right) == q


class TestIsMatching:
    def test_valid(self):
        graph, left, right = _graph_from_edges(2, 2, [(0, 0), (1, 1)])
        assert is_matching(graph, [(("L", 0), ("R", 0)), (("L", 1), ("R", 1))])

    def test_rejects_shared_endpoint(self):
        graph, left, right = _graph_from_edges(1, 2, [(0, 0), (0, 1)])
        assert not is_matching(graph, [(("L", 0), ("R", 0)), (("L", 0), ("R", 1))])

    def test_rejects_non_edge(self):
        graph, left, right = _graph_from_edges(2, 2, [(0, 0)])
        assert not is_matching(graph, [(("L", 1), ("R", 1))])


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_instances_match_networkx(self, seed):
        rng = random.Random(seed)
        graph, left, right = random_bipartite_graph(6, 7, 0.35, rng=rng)
        ours = maximum_matching_size(graph, left, right)
        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(left, bipartite=0)
        nx_graph.add_nodes_from(right, bipartite=1)
        nx_graph.add_edges_from(graph.edges())
        theirs = len(nx.bipartite.maximum_matching(nx_graph, top_nodes=left)) // 2
        assert ours == theirs

    @pytest.mark.parametrize("seed", range(4))
    def test_greedy_is_at_least_half(self, seed):
        rng = random.Random(seed + 100)
        graph, left, right = random_bipartite_graph(8, 8, 0.3, rng=rng)
        maximum = maximum_matching_size(graph, left, right)
        greedy = greedy_matching_size(graph, left, right)
        assert greedy <= maximum
        assert 2 * greedy >= maximum


@settings(max_examples=40, deadline=None)
@given(
    edges=st.sets(
        st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=25
    )
)
def test_hypothesis_matching_equals_networkx(edges):
    graph, left, right = _graph_from_edges(6, 6, edges)
    ours = maximum_matching_size(graph, left, right)
    nx_graph = nx.Graph()
    nx_graph.add_nodes_from(left, bipartite=0)
    nx_graph.add_nodes_from(right, bipartite=1)
    nx_graph.add_edges_from(graph.edges())
    theirs = len(nx.bipartite.maximum_matching(nx_graph, top_nodes=left)) // 2
    assert ours == theirs
