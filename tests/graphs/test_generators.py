"""Tests for the graph generators."""

import itertools
import random

import pytest

from repro.graphs import (
    biclique_minus_matching_edges,
    clique,
    clique_edges,
    complete_bipartite_edges,
    cycle_graph,
    independent_set_graph,
    path_graph,
    random_bipartite_graph,
    random_graph,
    star_graph,
    union_of_cliques,
)


class TestClique:
    def test_clique_edge_count(self):
        graph = clique(list(range(5)))
        assert graph.num_edges == 10

    def test_clique_is_clique(self):
        graph = clique(["a", "b", "c"])
        assert graph.is_clique(["a", "b", "c"])

    def test_clique_weight(self):
        graph = clique(["a", "b"], weight=4)
        assert graph.weight("a") == 4

    def test_single_node_clique(self):
        graph = clique(["a"])
        assert graph.num_nodes == 1
        assert graph.num_edges == 0

    def test_clique_edges_helper(self):
        assert len(clique_edges(list(range(4)))) == 6


class TestIndependentSetGraph:
    def test_no_edges(self):
        graph = independent_set_graph(list(range(6)))
        assert graph.num_edges == 0
        assert graph.is_independent_set(range(6))


class TestBipartite:
    def test_complete_bipartite_count(self):
        edges = complete_bipartite_edges(["a", "b"], [1, 2, 3])
        assert len(edges) == 6

    def test_biclique_minus_matching_count(self):
        edges = biclique_minus_matching_edges([0, 1, 2], ["x", "y", "z"])
        assert len(edges) == 6  # 9 - 3

    def test_biclique_minus_matching_excludes_matched_pairs(self):
        edges = set(biclique_minus_matching_edges([0, 1], ["x", "y"]))
        assert (0, "x") not in edges
        assert (1, "y") not in edges
        assert (0, "y") in edges
        assert (1, "x") in edges

    def test_biclique_minus_matching_unequal_sides_raises(self):
        with pytest.raises(ValueError):
            biclique_minus_matching_edges([0], ["x", "y"])

    def test_figure2_shape(self):
        """Figure 2: each left node connects to all but its matched partner."""
        left = [f"i{r}" for r in range(3)]
        right = [f"j{r}" for r in range(3)]
        edges = biclique_minus_matching_edges(left, right)
        for r in range(3):
            partners = {v for u, v in edges if u == left[r]}
            assert partners == set(right) - {right[r]}


class TestPathCycleStar:
    def test_path_edges(self):
        graph = path_graph(["a", "b", "c"])
        assert graph.num_edges == 2
        assert graph.has_edge("a", "b")
        assert not graph.has_edge("a", "c")

    def test_cycle_closes(self):
        graph = cycle_graph(["a", "b", "c", "d"])
        assert graph.num_edges == 4
        assert graph.has_edge("d", "a")

    def test_cycle_too_small_raises(self):
        with pytest.raises(ValueError):
            cycle_graph(["a", "b"])

    def test_star(self):
        graph = star_graph("hub", ["a", "b", "c"])
        assert graph.degree("hub") == 3
        assert graph.degree("a") == 1


class TestRandomGraphs:
    def test_random_graph_p0(self):
        graph = random_graph(10, 0.0, rng=random.Random(1))
        assert graph.num_edges == 0

    def test_random_graph_p1(self):
        graph = random_graph(10, 1.0, rng=random.Random(1))
        assert graph.num_edges == 45

    def test_random_graph_deterministic_given_seed(self):
        a = random_graph(15, 0.4, rng=random.Random(7))
        b = random_graph(15, 0.4, rng=random.Random(7))
        assert a == b

    def test_random_graph_weight_range(self):
        graph = random_graph(20, 0.2, rng=random.Random(3), weight_range=(2, 5))
        assert all(2 <= graph.weight(v) <= 5 for v in graph.nodes())

    def test_random_graph_bad_probability(self):
        with pytest.raises(ValueError):
            random_graph(5, 1.5)

    def test_random_graph_bad_weight_range(self):
        with pytest.raises(ValueError):
            random_graph(5, 0.5, weight_range=(5, 2))

    def test_random_graph_node_factory(self):
        graph = random_graph(3, 0.0, node_factory=lambda i: ("n", i))
        assert ("n", 2) in graph

    def test_random_bipartite_sides(self):
        graph, left, right = random_bipartite_graph(4, 5, 0.5, rng=random.Random(2))
        assert len(left) == 4 and len(right) == 5
        for u, v in graph.edges():
            assert (u in left) != (v in left)

    def test_random_bipartite_bad_probability(self):
        with pytest.raises(ValueError):
            random_bipartite_graph(2, 2, -0.1)


class TestUnionOfCliques:
    def test_structure(self):
        graph = union_of_cliques([["a", "b"], ["c", "d", "e"]])
        assert graph.num_edges == 1 + 3
        assert not graph.has_edge("a", "c")

    def test_code_gadget_shape(self):
        """The Code gadget is q cliques of size q: q * C(q,2) edges."""
        q = 4
        groups = [[(h, r) for r in range(q)] for h in range(q)]
        graph = union_of_cliques(groups)
        assert graph.num_nodes == q * q
        assert graph.num_edges == q * (q * (q - 1) // 2)

    def test_overlapping_groups_raise(self):
        with pytest.raises(ValueError):
            union_of_cliques([["a", "b"], ["b", "c"]])
