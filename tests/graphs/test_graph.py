"""Unit tests for the weighted graph substrate."""

import pytest

from repro.graphs import (
    DuplicateNodeError,
    EdgeNotFoundError,
    NodeNotFoundError,
    SelfLoopError,
    WeightedGraph,
    edge_key,
)


@pytest.fixture()
def triangle():
    graph = WeightedGraph()
    graph.add_node("a", weight=3)
    graph.add_node("b", weight=1)
    graph.add_node("c", weight=2)
    graph.add_edge("a", "b")
    graph.add_edge("b", "c")
    graph.add_edge("c", "a")
    return graph


class TestNodes:
    def test_add_node_default_weight(self):
        graph = WeightedGraph()
        graph.add_node("x")
        assert graph.weight("x") == 1

    def test_add_node_custom_weight(self):
        graph = WeightedGraph()
        graph.add_node("x", weight=7)
        assert graph.weight("x") == 7

    def test_add_existing_node_updates_weight(self):
        graph = WeightedGraph()
        graph.add_node("x", weight=1)
        graph.add_node("x", weight=5)
        assert graph.weight("x") == 5
        assert graph.num_nodes == 1

    def test_add_existing_node_exist_ok_false_raises(self):
        graph = WeightedGraph()
        graph.add_node("x")
        with pytest.raises(DuplicateNodeError):
            graph.add_node("x", exist_ok=False)

    def test_contains(self, triangle):
        assert "a" in triangle
        assert "z" not in triangle

    def test_len_and_num_nodes(self, triangle):
        assert len(triangle) == 3
        assert triangle.num_nodes == 3

    def test_remove_node_removes_incident_edges(self, triangle):
        triangle.remove_node("a")
        assert "a" not in triangle
        assert triangle.num_edges == 1
        assert not triangle.has_edge("b", "a")

    def test_remove_missing_node_raises(self, triangle):
        with pytest.raises(NodeNotFoundError):
            triangle.remove_node("zz")

    def test_constructor_from_mapping(self):
        graph = WeightedGraph(nodes={"a": 2, "b": 5})
        assert graph.weight("a") == 2
        assert graph.weight("b") == 5

    def test_constructor_from_iterable_and_edges(self):
        graph = WeightedGraph(nodes=["a", "b"], edges=[("a", "b"), ("b", "c")])
        assert graph.num_nodes == 3
        assert graph.has_edge("a", "b")
        assert graph.weight("c") == 1

    def test_node_order_is_insertion_order(self):
        graph = WeightedGraph(nodes=["c", "a", "b"])
        assert graph.node_list() == ["c", "a", "b"]

    def test_tuple_nodes(self):
        graph = WeightedGraph()
        graph.add_edge(("A", 0, 1), ("C", 0, 2, 1))
        assert graph.has_edge(("C", 0, 2, 1), ("A", 0, 1))


class TestWeights:
    def test_weight_of_missing_node_raises(self):
        graph = WeightedGraph()
        with pytest.raises(NodeNotFoundError):
            graph.weight("nope")

    def test_set_weight(self, triangle):
        triangle_copy = triangle.copy()
        triangle_copy.set_weight("a", 42)
        assert triangle_copy.weight("a") == 42

    def test_set_weight_missing_raises(self, triangle):
        with pytest.raises(NodeNotFoundError):
            triangle.set_weight("zz", 1)

    def test_total_weight_all(self, triangle):
        assert triangle.total_weight() == 6

    def test_total_weight_subset(self, triangle):
        assert triangle.total_weight(["a", "c"]) == 5

    def test_total_weight_empty_subset(self, triangle):
        assert triangle.total_weight([]) == 0

    def test_weights_returns_copy(self, triangle):
        weights = triangle.weights()
        weights["a"] = 99
        assert triangle.weight("a") == 3


class TestEdges:
    def test_add_edge_creates_endpoints(self):
        graph = WeightedGraph()
        graph.add_edge("u", "v")
        assert graph.num_nodes == 2
        assert graph.has_edge("u", "v")
        assert graph.has_edge("v", "u")

    def test_self_loop_rejected(self):
        graph = WeightedGraph()
        with pytest.raises(SelfLoopError):
            graph.add_edge("u", "u")

    def test_parallel_edge_is_noop(self):
        graph = WeightedGraph(edges=[("u", "v"), ("u", "v")])
        assert graph.num_edges == 1

    def test_remove_edge(self, triangle):
        triangle_copy = triangle.copy()
        triangle_copy.remove_edge("a", "b")
        assert not triangle_copy.has_edge("a", "b")
        assert triangle_copy.num_edges == 2

    def test_remove_missing_edge_raises(self, triangle):
        graph = triangle.copy()
        graph.remove_edge("a", "b")
        with pytest.raises(EdgeNotFoundError):
            graph.remove_edge("a", "b")

    def test_remove_edge_missing_endpoint_raises(self, triangle):
        with pytest.raises(NodeNotFoundError):
            triangle.remove_edge("a", "zz")

    def test_edges_iterates_each_once(self, triangle):
        edges = list(triangle.edges())
        assert len(edges) == 3
        assert len({edge_key(u, v) for u, v in edges}) == 3

    def test_edge_set(self, triangle):
        assert edge_key("a", "b") in triangle.edge_set()

    def test_neighbors(self, triangle):
        assert triangle.neighbors("a") == {"b", "c"}

    def test_neighbors_returns_copy(self, triangle):
        neighbors = triangle.neighbors("a")
        neighbors.add("zz")
        assert triangle.neighbors("a") == {"b", "c"}

    def test_degree(self, triangle):
        assert triangle.degree("a") == 2

    def test_max_degree(self, triangle):
        assert triangle.max_degree() == 2

    def test_max_degree_empty(self):
        assert WeightedGraph().max_degree() == 0


class TestPredicates:
    def test_independent_set_empty_is_independent(self, triangle):
        assert triangle.is_independent_set([])

    def test_independent_set_single(self, triangle):
        assert triangle.is_independent_set(["a"])

    def test_independent_set_adjacent_pair_rejected(self, triangle):
        assert not triangle.is_independent_set(["a", "b"])

    def test_independent_set_unknown_node_raises(self, triangle):
        with pytest.raises(NodeNotFoundError):
            triangle.is_independent_set(["zz"])

    def test_independent_set_nonadjacent(self):
        graph = WeightedGraph(edges=[("a", "b"), ("c", "d")])
        assert graph.is_independent_set(["a", "c"])

    def test_is_clique(self, triangle):
        assert triangle.is_clique(["a", "b", "c"])

    def test_is_clique_missing_edge(self):
        graph = WeightedGraph(edges=[("a", "b"), ("b", "c")])
        assert not graph.is_clique(["a", "b", "c"])

    def test_is_connected(self, triangle):
        assert triangle.is_connected()

    def test_disconnected(self):
        graph = WeightedGraph(nodes=["a", "b"])
        assert not graph.is_connected()

    def test_empty_graph_connected(self):
        assert WeightedGraph().is_connected()

    def test_connected_components(self):
        graph = WeightedGraph(edges=[("a", "b")])
        graph.add_node("c")
        components = graph.connected_components()
        assert sorted(sorted(map(str, comp)) for comp in components) == [
            ["a", "b"],
            ["c"],
        ]

    def test_diameter_triangle(self, triangle):
        assert triangle.diameter() == 1

    def test_diameter_path(self):
        graph = WeightedGraph(edges=[("a", "b"), ("b", "c"), ("c", "d")])
        assert graph.diameter() == 3

    def test_diameter_disconnected_raises(self):
        graph = WeightedGraph(nodes=["a", "b"])
        with pytest.raises(ValueError):
            graph.diameter()

    def test_bfs_distances(self):
        graph = WeightedGraph(edges=[("a", "b"), ("b", "c")])
        assert graph.bfs_distances("a") == {"a": 0, "b": 1, "c": 2}

    def test_bfs_missing_source_raises(self, triangle):
        with pytest.raises(NodeNotFoundError):
            triangle.bfs_distances("zz")


class TestDerivedGraphs:
    def test_copy_is_independent(self, triangle):
        clone = triangle.copy()
        clone.remove_edge("a", "b")
        assert triangle.has_edge("a", "b")

    def test_copy_preserves_weights(self, triangle):
        assert triangle.copy().weights() == triangle.weights()

    def test_subgraph(self, triangle):
        sub = triangle.subgraph(["a", "b"])
        assert sub.num_nodes == 2
        assert sub.has_edge("a", "b")
        assert sub.weight("a") == 3

    def test_subgraph_missing_node_raises(self, triangle):
        with pytest.raises(NodeNotFoundError):
            triangle.subgraph(["a", "zz"])

    def test_complement_of_triangle_is_empty(self, triangle):
        assert triangle.complement().num_edges == 0

    def test_complement_preserves_weights(self, triangle):
        assert triangle.complement().weight("a") == 3

    def test_complement_involution(self):
        graph = WeightedGraph(edges=[("a", "b"), ("c", "d"), ("a", "c")])
        assert graph.complement().complement() == graph

    def test_relabeled(self, triangle):
        renamed = triangle.relabeled({"a": "x"})
        assert renamed.has_edge("x", "b")
        assert renamed.weight("x") == 3
        assert "a" not in renamed

    def test_relabeled_non_injective_raises(self, triangle):
        with pytest.raises(ValueError):
            triangle.relabeled({"a": "b"})

    def test_disjoint_union(self):
        left = WeightedGraph(edges=[("a", "b")])
        right = WeightedGraph(edges=[("c", "d")])
        union = left.disjoint_union(right)
        assert union.num_nodes == 4
        assert union.num_edges == 2

    def test_disjoint_union_overlap_raises(self):
        left = WeightedGraph(nodes=["a"])
        right = WeightedGraph(nodes=["a"])
        with pytest.raises(ValueError):
            left.disjoint_union(right)

    def test_equality(self, triangle):
        assert triangle == triangle.copy()

    def test_inequality_on_weights(self, triangle):
        other = triangle.copy()
        other.set_weight("a", 100)
        assert triangle != other

    def test_inequality_on_edges(self, triangle):
        other = triangle.copy()
        other.remove_edge("a", "b")
        assert triangle != other

    def test_structural_signature(self, triangle):
        assert triangle.structural_signature() == (3, 3, 6)

    def test_to_index_form_roundtrip(self, triangle):
        nodes, weights, masks = triangle.to_index_form()
        assert len(nodes) == 3
        index = {node: i for i, node in enumerate(nodes)}
        for u, v in triangle.edges():
            assert masks[index[u]] >> index[v] & 1
            assert masks[index[v]] >> index[u] & 1
        assert weights[index["a"]] == 3

    def test_to_index_form_with_order(self, triangle):
        nodes, weights, masks = triangle.to_index_form(order=["c", "a", "b"])
        assert nodes == ["c", "a", "b"]
        assert weights == [2, 3, 1]
        # Triangle: every pair adjacent; masks reflect the given order.
        assert masks == [0b110, 0b101, 0b011]

    @pytest.mark.parametrize(
        "order",
        [["a", "b"], ["a", "b", "c", "d"], ["a", "b", "x"], ["a", "b", "b"]],
    )
    def test_to_index_form_rejects_non_permutation(self, triangle, order):
        with pytest.raises(ValueError):
            triangle.to_index_form(order=order)


class TestDegreeBuckets:
    def test_nodes_by_degree_ascending_keys(self):
        graph = WeightedGraph(nodes={"iso": 1, "leaf": 1, "hub": 1, "mid": 1})
        graph.add_edge("leaf", "hub")
        graph.add_edge("hub", "mid")
        buckets = graph.nodes_by_degree()
        assert list(buckets) == [0, 1, 2]
        assert buckets[0] == ["iso"]
        assert buckets[2] == ["hub"]

    def test_nodes_by_degree_insertion_order_within_bucket(self):
        graph = WeightedGraph(nodes={n: 1 for n in "dcba"})
        buckets = graph.nodes_by_degree()
        assert buckets[0] == ["d", "c", "b", "a"]

    def test_nodes_by_degree_empty(self):
        assert WeightedGraph().nodes_by_degree() == {}


class TestDerivedCache:
    def test_solver_index_form_cached(self, triangle):
        assert triangle.solver_index_form() is triangle.solver_index_form()

    def test_solver_index_form_branching_order(self, triangle):
        order, weights, masks, index = triangle.solver_index_form()
        assert order == ["a", "c", "b"]  # heaviest first: 3, 2, 1
        assert weights == [3, 2, 1]
        assert [index[n] for n in order] == [0, 1, 2]
        assert masks == [0b110, 0b101, 0b011]

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda g: g.add_node("z"),
            lambda g: g.remove_node("a"),
            lambda g: g.set_weight("b", 9),
            lambda g: g.add_edge("a", "d"),
            lambda g: g.remove_edge("a", "b"),
        ],
    )
    def test_every_mutator_invalidates_cache(self, triangle, mutate):
        triangle.add_node("d")  # spare node so add_edge has a target
        first = triangle.solver_index_form()
        mutate(triangle)
        assert triangle.solver_index_form() is not first

    def test_derived_cache_entries_survive_reads(self, triangle):
        triangle.derived_cache()["test.entry"] = "payload"
        triangle.degree("a")
        triangle.is_independent_set(["a"])
        assert triangle.derived_cache()["test.entry"] == "payload"

    def test_pickle_drops_derived_cache(self, triangle):
        import pickle

        triangle.derived_cache()["test.entry"] = object()
        clone = pickle.loads(pickle.dumps(triangle))
        assert clone == triangle
        assert "test.entry" not in clone.derived_cache()
