"""Tests for the Graphviz DOT export."""

from repro.gadgets import GadgetParameters, LinearConstruction
from repro.graphs import WeightedGraph, clique, to_dot


class TestToDot:
    def test_basic_structure(self):
        graph = WeightedGraph(edges=[("a", "b")])
        dot = to_dot(graph)
        assert dot.startswith('graph "G" {')
        assert dot.endswith("}")
        assert '"\'a\'" -- "\'b\'";' in dot

    def test_each_edge_once(self):
        graph = clique(["a", "b", "c"])
        dot = to_dot(graph)
        assert dot.count("--") == 3

    def test_weights_labelled(self):
        graph = WeightedGraph(nodes={"a": 5})
        dot = to_dot(graph)
        assert "w=5" in dot

    def test_weights_suppressed(self):
        graph = WeightedGraph(nodes={"a": 5})
        dot = to_dot(graph, show_weights=False)
        assert "w=5" not in dot

    def test_unit_weights_not_labelled(self):
        graph = WeightedGraph(nodes={"a": 1})
        assert "w=1" not in to_dot(graph)

    def test_groups_become_clusters(self):
        graph = WeightedGraph(nodes=["a", "b"])
        dot = to_dot(graph, groups={"left": ["a"], "right": ["b"]})
        assert "subgraph cluster_0" in dot
        assert "subgraph cluster_1" in dot
        assert 'label="left";' in dot

    def test_deterministic(self):
        graph = clique([3, 1, 2])
        assert to_dot(graph) == to_dot(graph)

    def test_quoting(self):
        graph = WeightedGraph(nodes=['he said "hi"'])
        dot = to_dot(graph)
        assert '\\"hi\\"' in dot

    def test_gadget_export_renders_all_nodes(self):
        construction = LinearConstruction(GadgetParameters(ell=2, alpha=1, t=2))
        dot = to_dot(construction.graph, groups=construction.groups())
        for node in construction.graph.nodes():
            assert f'"{_fmt(node)}"' in dot

    def test_custom_name(self):
        graph = WeightedGraph(nodes=["a"])
        assert to_dot(graph, name="H").startswith('graph "H" {')


def _fmt(node):
    from repro.graphs import format_node

    return format_node(node)
