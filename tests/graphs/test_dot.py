"""Tests for the Graphviz DOT export."""

from repro.gadgets import GadgetParameters, LinearConstruction
from repro.graphs import WeightedGraph, clique, to_dot


class TestToDot:
    def test_basic_structure(self):
        graph = WeightedGraph(edges=[("a", "b")])
        dot = to_dot(graph)
        assert dot.startswith('graph "G" {')
        assert dot.endswith("}")
        assert '"\'a\'" -- "\'b\'";' in dot

    def test_each_edge_once(self):
        graph = clique(["a", "b", "c"])
        dot = to_dot(graph)
        assert dot.count("--") == 3

    def test_weights_labelled(self):
        graph = WeightedGraph(nodes={"a": 5})
        dot = to_dot(graph)
        assert "w=5" in dot

    def test_weights_suppressed(self):
        graph = WeightedGraph(nodes={"a": 5})
        dot = to_dot(graph, show_weights=False)
        assert "w=5" not in dot

    def test_unit_weights_not_labelled(self):
        graph = WeightedGraph(nodes={"a": 1})
        assert "w=1" not in to_dot(graph)

    def test_groups_become_clusters(self):
        graph = WeightedGraph(nodes=["a", "b"])
        dot = to_dot(graph, groups={"left": ["a"], "right": ["b"]})
        assert "subgraph cluster_0" in dot
        assert "subgraph cluster_1" in dot
        assert 'label="left";' in dot

    def test_deterministic(self):
        graph = clique([3, 1, 2])
        assert to_dot(graph) == to_dot(graph)

    def test_quoting(self):
        graph = WeightedGraph(nodes=['he said "hi"'])
        dot = to_dot(graph)
        assert '\\"hi\\"' in dot

    def test_gadget_export_renders_all_nodes(self):
        construction = LinearConstruction(GadgetParameters(ell=2, alpha=1, t=2))
        dot = to_dot(construction.graph, groups=construction.groups())
        for node in construction.graph.nodes():
            assert f'"{_fmt(node)}"' in dot

    def test_custom_name(self):
        graph = WeightedGraph(nodes=["a"])
        assert to_dot(graph, name="H").startswith('graph "H" {')


class TestToDotRenderPaths:
    def test_grouped_nodes_not_duplicated_at_top_level(self):
        graph = WeightedGraph(nodes=["a", "b"])
        dot = to_dot(graph, groups={"left": ["a"]})
        # "a" renders once inside its cluster, "b" once at top level.
        assert dot.count('"\'a\'" [') == 1
        assert dot.count('"\'b\'" [') == 1

    def test_weight_labels_inside_clusters(self):
        graph = WeightedGraph(nodes={"a": 7})
        dot = to_dot(graph, groups={"left": ["a"]})
        assert "subgraph cluster_0" in dot
        assert "w=7" in dot

    def test_clusters_sorted_by_label(self):
        graph = WeightedGraph(nodes=["a", "b"])
        dot = to_dot(graph, groups={"zeta": ["b"], "alpha": ["a"]})
        assert dot.index('label="alpha"') < dot.index('label="zeta"')

    def test_backslashes_escaped_in_labels(self):
        graph = WeightedGraph(nodes=["back\\slash"])
        dot = to_dot(graph)
        # repr() doubles the backslash, DOT quoting doubles it again.
        assert "back" + "\\" * 4 + "slash" in dot

    def test_edge_orientation_normalised(self):
        # The same undirected edge renders identically regardless of
        # the orientation it was inserted with.
        forward = to_dot(WeightedGraph(edges=[("a", "b")]))
        backward = to_dot(WeightedGraph(edges=[("b", "a")]))
        assert forward == backward

    def test_isolated_node_still_rendered(self):
        graph = WeightedGraph(nodes=["lonely"], edges=[])
        dot = to_dot(graph)
        assert "'lonely'" in dot
        assert "--" not in dot


def _fmt(node):
    from repro.graphs import format_node

    return format_node(node)
