"""Key derivation: canonical params in, stable content addresses out."""

import pytest

from repro.graphs import WeightedGraph
from repro.store import canonical_graph_dict, derive_key, encode_for_key


def _triangle(order=("a", "b", "c")):
    graph = WeightedGraph()
    for node in order:
        graph.add_node(node, weight=1.0)
    graph.add_edge("a", "b")
    graph.add_edge("b", "c")
    graph.add_edge("a", "c")
    return graph


class TestEncodeForKey:
    def test_scalars_pass_through(self):
        for value in (None, True, 3, 2.5, "x"):
            assert encode_for_key(value) == value

    def test_dict_key_order_is_canonical(self):
        assert encode_for_key({"a": 1, "b": 2}) == encode_for_key(
            {"b": 2, "a": 1}
        )

    def test_tuple_equals_list(self):
        assert encode_for_key((1, 2, 3)) == encode_for_key([1, 2, 3])

    def test_graph_insertion_order_is_canonical(self):
        one = encode_for_key(_triangle(("a", "b", "c")))
        other = encode_for_key(_triangle(("c", "a", "b")))
        assert one == other
        assert "__graph__" in one

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            encode_for_key(object())


class TestDeriveKey:
    def test_key_is_hex_sha256(self):
        key = derive_key("kind", {"x": 1}, "fp")
        assert len(key) == 64
        assert set(key) <= set("0123456789abcdef")

    def test_kind_params_fingerprint_all_matter(self):
        base = derive_key("kind", {"x": 1}, "fp")
        assert derive_key("other", {"x": 1}, "fp") != base
        assert derive_key("kind", {"x": 2}, "fp") != base
        assert derive_key("kind", {"x": 1}, "fp2") != base

    def test_param_dict_order_does_not_matter(self):
        assert derive_key("k", {"a": 1, "b": 2}, "fp") == derive_key(
            "k", {"b": 2, "a": 1}, "fp"
        )

    def test_graph_weight_changes_the_key(self):
        light = _triangle()
        heavy = _triangle()
        heavy.set_weight("a", 5.0)
        assert derive_key("k", {"graph": light}, "fp") != derive_key(
            "k", {"graph": heavy}, "fp"
        )

    def test_graph_edge_changes_the_key(self):
        triangle = _triangle()
        path = WeightedGraph()
        for node in ("a", "b", "c"):
            path.add_node(node, weight=1.0)
        path.add_edge("a", "b")
        path.add_edge("b", "c")
        assert derive_key("k", {"graph": triangle}, "fp") != derive_key(
            "k", {"graph": path}, "fp"
        )


class TestCanonicalGraphDict:
    def test_tuple_nodes_sort_stably(self):
        graph = WeightedGraph()
        graph.add_node(("C", 0, 1, 2), weight=1.0)
        graph.add_node(("A", 0, 1), weight=2.0)
        graph.add_edge(("C", 0, 1, 2), ("A", 0, 1))
        canonical = canonical_graph_dict(graph)
        assert len(canonical["nodes"]) == 2
        assert len(canonical["edges"]) == 1
        again = canonical_graph_dict(graph)
        assert canonical == again
