"""Code fingerprints: the self-invalidation half of the content address.

A key bakes in a hash of the *source* of every module the computation
depends on, so editing a cached code path silently becomes a cache
miss instead of silently serving stale results.
"""

import importlib

from repro.store import (
    MISS,
    MemoryBackend,
    ResultStore,
    clear_fingerprint_cache,
    combined_fingerprint,
    module_fingerprint,
)


class TestModuleFingerprint:
    def test_stable_within_a_process(self):
        assert module_fingerprint("repro.graphs.graph") == module_fingerprint(
            "repro.graphs.graph"
        )

    def test_distinct_modules_differ(self):
        assert module_fingerprint("repro.graphs.graph") != module_fingerprint(
            "repro.graphs.serialize"
        )

    def test_unresolvable_module_gets_sentinel(self):
        assert (
            module_fingerprint("repro.no_such_module_xyz")
            == "unresolved:repro.no_such_module_xyz"
        )

    def test_combined_is_order_insensitive(self):
        names = ["repro.graphs.graph", "repro.graphs.serialize"]
        assert combined_fingerprint(names) == combined_fingerprint(
            list(reversed(names))
        )

    def test_combined_differs_from_single(self):
        one = combined_fingerprint(["repro.graphs.graph"])
        two = combined_fingerprint(
            ["repro.graphs.graph", "repro.graphs.serialize"]
        )
        assert one != two


class TestEditInvalidates:
    """The acceptance property: editing a module's source forces a miss."""

    def _write_module(self, tmp_path, body):
        (tmp_path / "fp_probe_module.py").write_text(body)
        importlib.invalidate_caches()

    def test_source_edit_changes_fingerprint(self, tmp_path, monkeypatch):
        monkeypatch.syspath_prepend(str(tmp_path))
        self._write_module(tmp_path, "VALUE = 1\n")
        clear_fingerprint_cache()
        before = module_fingerprint("fp_probe_module")
        self._write_module(tmp_path, "VALUE = 2\n")
        clear_fingerprint_cache()
        after = module_fingerprint("fp_probe_module")
        assert before != after
        assert not before.startswith("unresolved:")
        clear_fingerprint_cache()

    def test_source_edit_forces_store_miss(self, tmp_path, monkeypatch):
        monkeypatch.syspath_prepend(str(tmp_path))
        self._write_module(tmp_path, "def compute():\n    return 1\n")
        clear_fingerprint_cache()
        store = ResultStore(MemoryBackend())
        key = store.key_for("probe.value", {"x": 1}, ["fp_probe_module"])
        store.put(key, "probe.value", "json", 1)
        assert store.get(key) == 1
        # Edit the dependency: the same logical computation now derives
        # a different content address, so the old entry is unreachable.
        self._write_module(tmp_path, "def compute():\n    return 2\n")
        clear_fingerprint_cache()
        new_key = store.key_for("probe.value", {"x": 1}, ["fp_probe_module"])
        assert new_key != key
        assert store.get(new_key) is MISS
        clear_fingerprint_cache()
