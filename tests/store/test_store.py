"""ResultStore facade + process-global configuration semantics."""

import pytest

from repro import obs, store
from repro.store import (
    MISS,
    DiskBackend,
    MemoryBackend,
    ResultStore,
    configure,
    get_store,
    store_mode,
    using_store,
)

MODULES = ["repro.graphs.graph"]


class TestResultStore:
    def test_get_or_compute_misses_then_hits(self):
        calls = []
        result_store = ResultStore(MemoryBackend())

        def compute():
            calls.append(1)
            return {"answer": 42}

        first = result_store.get_or_compute(
            "test.kind", {"x": 1}, MODULES, "json", compute
        )
        second = result_store.get_or_compute(
            "test.kind", {"x": 1}, MODULES, "json", compute
        )
        assert first == second == {"answer": 42}
        assert len(calls) == 1

    def test_none_is_a_cacheable_value(self):
        result_store = ResultStore(MemoryBackend())
        key = result_store.key_for("test.none", {}, MODULES)
        assert result_store.get(key) is MISS
        result_store.put(key, "test.none", "json", None)
        assert result_store.get(key) is None

    def test_counters_flow_through_obs(self):
        result_store = ResultStore(MemoryBackend())
        key = result_store.key_for("test.count", {}, MODULES)
        with obs.recording() as recorder:
            result_store.get(key)  # miss
            nbytes = result_store.put(key, "test.count", "json", [1, 2, 3])
            result_store.get(key)  # hit
        assert recorder.counters["cache.miss"] == 1
        assert recorder.counters["cache.hit"] == 1
        assert recorder.counters["cache.bytes_written"] == nbytes
        assert "cache.lookup" in recorder.timer_summaries()

    def test_corrupt_payload_counts_as_miss(self):
        backend = MemoryBackend()
        result_store = ResultStore(backend)
        key = result_store.key_for("test.corrupt", {}, MODULES)
        backend.put(key, "json", b"not json at all {", kind="test.corrupt")
        assert result_store.get(key) is MISS

    def test_unknown_codec_in_entry_counts_as_miss(self):
        backend = MemoryBackend()
        result_store = ResultStore(backend)
        key = result_store.key_for("test.codec", {}, MODULES)
        backend.put(key, "from_the_future", b"[]", kind="test.codec")
        assert result_store.get(key) is MISS

    def test_put_returns_payload_size(self, tmp_path):
        result_store = ResultStore(DiskBackend(tmp_path))
        key = result_store.key_for("test.size", {}, MODULES)
        nbytes = result_store.put(key, "test.size", "json", "payload")
        assert nbytes == len(b'"payload"')


class TestConfigure:
    def test_off_by_default(self):
        assert get_store() is None
        assert store_mode() == "off"

    def test_configure_modes(self, tmp_path):
        try:
            assert configure("off") is None
            memory = configure("memory")
            assert memory is not None and memory.name == "memory"
            disk = configure("disk", path=str(tmp_path / "c"))
            assert disk is not None and disk.name == "disk"
            assert store_mode() == "disk"
        finally:
            configure("off")

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError, match="cache mode"):
            configure("turbo")

    def test_using_store_restores_previous(self):
        assert get_store() is None
        with using_store("memory") as active:
            assert get_store() is active
            assert store_mode() == "memory"
        assert get_store() is None

    def test_memory_mode_starts_fresh_each_time(self):
        with using_store("memory") as first:
            key = first.key_for("test.fresh", {}, MODULES)
            first.put(key, "test.fresh", "json", 1)
            assert first.get(key) == 1
        with using_store("memory") as second:
            assert second.get(key) is MISS


class TestHardResetHook:
    """Regression: ``hard_reset`` must clear fork-inherited cache state."""

    def test_hard_reset_clears_the_memory_backend(self):
        with using_store("memory") as active:
            key = active.key_for("test.reset", {}, MODULES)
            active.put(key, "test.reset", "json", {"warm": True})
            assert active.get(key) == {"warm": True}
            obs.get_recorder().hard_reset()
            assert active.backend.stats()["entries"] == 0
            assert active.get(key) is MISS

    def test_hard_reset_leaves_disk_entries_alone(self, tmp_path):
        # The disk store is *shared* state, not per-process state: a
        # worker's hard reset must not wipe the parent's warm cache.
        with using_store("disk", path=str(tmp_path)) as active:
            key = active.key_for("test.disk", {}, MODULES)
            active.put(key, "test.disk", "json", 7)
            obs.get_recorder().hard_reset()
            assert active.get(key) == 7

    def test_hook_registry_deduplicates(self):
        from repro.obs.recorder import _HARD_RESET_HOOKS, register_hard_reset_hook

        before = len(_HARD_RESET_HOOKS)
        store._clear_inherited_memory_state  # the registered hook
        register_hard_reset_hook(store._clear_inherited_memory_state)
        assert len(_HARD_RESET_HOOKS) == before
