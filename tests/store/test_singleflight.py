"""Single-flight: concurrent callers of one key share one computation."""

import threading

import pytest

from repro import obs, store
from repro.store import MemoryBackend, ResultStore, SingleFlight


class Gate:
    """A counting compute that blocks until released."""

    def __init__(self):
        self.calls = 0
        self.started = threading.Event()
        self.release = threading.Event()
        self._lock = threading.Lock()

    def __call__(self):
        with self._lock:
            self.calls += 1
        self.started.set()
        self.release.wait(timeout=10)
        return {"calls": self.calls}


class TestSingleFlight:
    def test_single_caller_leads(self):
        sf = SingleFlight()
        value, led = sf.do("k", lambda: 41 + 1)
        assert value == 42
        assert led is True
        assert sf.in_flight() == 0

    def test_concurrent_same_key_runs_once(self):
        sf = SingleFlight()
        gate = Gate()
        results = []

        def call():
            results.append(sf.do("k", gate))

        threads = [threading.Thread(target=call) for _ in range(8)]
        for t in threads:
            t.start()
        assert gate.started.wait(timeout=10)
        gate.release.set()
        for t in threads:
            t.join(timeout=10)
        assert gate.calls == 1
        assert [value for value, _ in results] == [{"calls": 1}] * 8
        assert sum(1 for _, led in results if led) == 1
        assert sf.in_flight() == 0

    def test_distinct_keys_do_not_coalesce(self):
        sf = SingleFlight()
        calls = []
        barrier = threading.Barrier(2)

        def compute(tag):
            barrier.wait(timeout=10)
            calls.append(tag)
            return tag

        threads = [
            threading.Thread(target=sf.do, args=(key, lambda key=key: compute(key)))
            for key in ("a", "b")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert sorted(calls) == ["a", "b"]

    def test_leader_exception_propagates_to_followers(self):
        sf = SingleFlight()
        started = threading.Event()
        release = threading.Event()
        errors = []

        def boom():
            started.set()
            release.wait(timeout=10)
            raise ValueError("compute failed")

        def call():
            try:
                sf.do("k", boom)
            except ValueError as error:
                errors.append(error)

        threads = [threading.Thread(target=call) for _ in range(4)]
        for t in threads:
            t.start()
        assert started.wait(timeout=10)
        release.set()
        for t in threads:
            t.join(timeout=10)
        # Every caller — leader and followers alike — sees the failure.
        assert len(errors) == 4
        assert all("compute failed" in str(error) for error in errors)

    def test_failed_key_is_retried_not_poisoned(self):
        sf = SingleFlight()
        with pytest.raises(RuntimeError):
            sf.do("k", lambda: (_ for _ in ()).throw(RuntimeError("once")))
        value, led = sf.do("k", lambda: "recovered")
        assert value == "recovered"
        assert led is True

    def test_followers_count_as_coalesced(self):
        sf = SingleFlight()
        gate = Gate()
        with obs.recording() as recorder:
            threads = [
                threading.Thread(target=sf.do, args=("k", gate)) for _ in range(4)
            ]
            for t in threads:
                t.start()
            assert gate.started.wait(timeout=10)
            gate.release.set()
            for t in threads:
                t.join(timeout=10)
            assert recorder.counters["cache.coalesced"] == 3


class TestStoreSingleFlight:
    """The duplicate-compute race regression: N callers, one compute."""

    MODULES = ["repro.store.keys"]

    def test_get_or_compute_coalesces_duplicate_computes(self):
        result_store = ResultStore(MemoryBackend(1 << 20))
        gate = Gate()
        results = []

        def call():
            results.append(
                result_store.get_or_compute(
                    "race", {"x": 1}, self.MODULES, "json", gate
                )
            )

        with obs.recording() as recorder:
            threads = [threading.Thread(target=call) for _ in range(8)]
            for t in threads:
                t.start()
            assert gate.started.wait(timeout=10)
            gate.release.set()
            for t in threads:
                t.join(timeout=10)
            # Without single-flight every thread misses and recomputes;
            # with it, exactly one compute and one miss happen.
            assert gate.calls == 1
            assert results == [{"calls": 1}] * 8
            assert recorder.counters["cache.miss"] == 1
            assert recorder.counters["cache.coalesced"] == 7
            assert recorder.counters.get("cache.hit", 0) == 0

    def test_followers_never_touch_the_backend(self):
        class CountingBackend(MemoryBackend):
            def __init__(self):
                super().__init__(1 << 20)
                self.gets = 0

            def get(self, key):
                self.gets += 1
                return super().get(key)

        backend = CountingBackend()
        result_store = ResultStore(backend)
        gate = Gate()
        threads = [
            threading.Thread(
                target=result_store.get_or_compute,
                args=("race", {"x": 2}, self.MODULES, "json", gate),
            )
            for _ in range(6)
        ]
        for t in threads:
            t.start()
        assert gate.started.wait(timeout=10)
        gate.release.set()
        for t in threads:
            t.join(timeout=10)
        assert backend.gets == 1

    def test_opt_out_restores_plain_behavior(self):
        result_store = ResultStore(MemoryBackend(1 << 20), single_flight=None)
        assert result_store.single_flight is None
        assert (
            result_store.get_or_compute(
                "plain", {"x": 3}, self.MODULES, "json", lambda: 7
            )
            == 7
        )

    def test_configured_stores_are_single_flight_by_default(self):
        with store.using_store("memory") as result_store:
            assert isinstance(result_store.single_flight, SingleFlight)

    def test_sequential_calls_hit_the_cache(self):
        result_store = ResultStore(MemoryBackend(1 << 20))
        calls = []
        with obs.recording() as recorder:
            for _ in range(3):
                value = result_store.get_or_compute(
                    "seq",
                    {"x": 4},
                    self.MODULES,
                    "json",
                    lambda: calls.append(1) or {"v": 5},
                )
                assert value == {"v": 5}
            assert len(calls) == 1
            assert recorder.counters["cache.miss"] == 1
            assert recorder.counters["cache.hit"] == 2
