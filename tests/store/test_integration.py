"""The store under real producers: engine sweeps, gadgets, solvers."""

from repro import obs
from repro.core import report_to_json
from repro.gadgets import GadgetParameters, LinearConstruction
from repro.graphs import WeightedGraph
from repro.maxis import max_weight_independent_set
from repro.parallel import run_units, theorem1_units
from repro.store import using_store


def _units():
    return theorem1_units(3, num_samples=2, seed=0)


class TestEngineCaching:
    def test_warm_sweep_matches_cold_on_disk(self, tmp_path):
        with using_store("disk", path=str(tmp_path)):
            cold = run_units(_units(), workers=1)
            warm = run_units(_units(), workers=1)
        assert [report_to_json(r) for r in cold] == [
            report_to_json(r) for r in warm
        ]

    def test_warm_sweep_matches_cold_in_memory(self):
        with using_store("memory"):
            cold = run_units(_units(), workers=1)
            warm = run_units(_units(), workers=1)
        assert [report_to_json(r) for r in cold] == [
            report_to_json(r) for r in warm
        ]

    def test_warm_sweep_dispatches_nothing(self, tmp_path):
        with using_store("disk", path=str(tmp_path)):
            run_units(_units(), workers=1)
            with obs.recording() as recorder:
                run_units(_units(), workers=1)
        units = len(_units())
        assert recorder.counters["parallel.units_cached"] == units
        assert recorder.counters["cache.hit"] >= units
        # Nothing was recomputed: no solver work reached the backend.
        assert "maxis.exact.solves" not in recorder.counters

    def test_partial_warmth_runs_only_the_gap(self, tmp_path):
        all_units = _units()
        with using_store("disk", path=str(tmp_path)):
            run_units(all_units[:1], workers=1)
            with obs.recording() as recorder:
                results = run_units(all_units, workers=1)
        assert len(results) == len(all_units)
        assert recorder.counters["parallel.units_cached"] == 1

    def test_store_off_still_works(self):
        results = run_units(_units()[:1], workers=1)
        assert len(results) == 1


class TestProducerCaching:
    def test_second_linear_construction_hits(self):
        params = GadgetParameters(ell=2, alpha=1, t=2)
        with using_store("memory"):
            first = LinearConstruction(params)
            with obs.recording() as recorder:
                second = LinearConstruction(params)
        assert recorder.counters["cache.hit"] >= 2  # code mapping + graph
        assert recorder.counters.get("cache.miss", 0) == 0
        assert set(second.graph.nodes()) == set(first.graph.nodes())
        assert second.graph.num_edges == first.graph.num_edges
        assert [layout.all_nodes() for layout in second.layouts] == [
            layout.all_nodes() for layout in first.layouts
        ]

    def test_ablation_flags_key_separately(self):
        params = GadgetParameters(ell=2, alpha=1, t=2)
        with using_store("memory"):
            standard = LinearConstruction(params)
            ablated = LinearConstruction(params, remove_matching=False)
        assert ablated.graph.num_edges > standard.graph.num_edges

    def test_maxis_witness_round_trips(self):
        graph = WeightedGraph()
        for node, weight in (("a", 2.0), ("b", 1.0), ("c", 3.0)):
            graph.add_node(node, weight=weight)
        graph.add_edge("a", "b")
        with using_store("memory"):
            first = max_weight_independent_set(graph)
            with obs.recording() as recorder:
                second = max_weight_independent_set(graph)
        assert "maxis.exact.solves" not in recorder.counters
        assert second.weight == first.weight == 5.0
        assert set(second.nodes) == set(first.nodes)
