"""Typed codec round trips: what goes into a payload comes back whole."""

import pytest

from repro.codes import (
    StoredCodeMapping,
    code_mapping_for_parameters,
)
from repro.core import ClaimCheck, claim_check_to_dict, report_to_json
from repro.graphs import WeightedGraph
from repro.store import get_codec
from repro.store.codecs import CODECS


def _weighted_graph():
    graph = WeightedGraph()
    graph.add_node(("A", 0, 1), weight=2.0)
    graph.add_node(("C", 0, 1, 2), weight=1.0)
    graph.add_node("plain", weight=0.5)
    graph.add_edge(("A", 0, 1), ("C", 0, 1, 2))
    graph.add_edge("plain", ("A", 0, 1))
    return graph


class TestJsonCodec:
    def test_round_trip(self):
        codec = get_codec("json")
        value = {"a": [1, 2.5, None, True], "b": "text"}
        assert codec.decode(codec.encode(value)) == value

    def test_payload_bytes_are_stable(self):
        codec = get_codec("json")
        assert codec.encode({"b": 2, "a": 1}) == codec.encode({"a": 1, "b": 2})


class TestGraphCodec:
    def test_round_trip_preserves_nodes_edges_weights(self):
        codec = get_codec("graph")
        graph = _weighted_graph()
        restored = codec.decode(codec.encode(graph))
        assert set(restored.nodes()) == set(graph.nodes())
        assert restored.num_edges == graph.num_edges
        for node in graph.nodes():
            assert restored.weight(node) == graph.weight(node)


class TestNodeListCodec:
    def test_round_trip_is_sorted_and_typed(self):
        codec = get_codec("node_list")
        nodes = [("C", 0, 1, 2), "plain", ("A", 0, 1)]
        restored = codec.decode(codec.encode(nodes))
        assert set(restored) == set(nodes)
        # Canonical payloads: encoding any permutation gives the bytes.
        assert codec.encode(nodes) == codec.encode(list(reversed(nodes)))


class TestReportCodec:
    def test_round_trip_is_json_exact(self):
        from repro.parallel.jobs import execute_unit

        report = execute_unit(
            "theorem1_point", {"t": 2, "num_samples": 1, "seed": 0}
        )
        codec = get_codec("report")
        restored = codec.decode(codec.encode(report))
        assert report_to_json(restored) == report_to_json(report)


class TestClaimCheckCodec:
    def test_round_trip(self):
        codec = get_codec("claim_check")
        check = ClaimCheck(
            name="claim 3",
            holds=True,
            measured=12.0,
            bound=14.0,
            direction="<=",
            detail="low side",
        )
        restored = codec.decode(codec.encode(check))
        assert claim_check_to_dict(restored) == claim_check_to_dict(check)


class TestCodeMappingCodec:
    def test_round_trip_preserves_codewords_and_distance(self):
        codec = get_codec("code_mapping")
        mapping = code_mapping_for_parameters(2, 1)
        restored = codec.decode(codec.encode(mapping))
        assert isinstance(restored, StoredCodeMapping)
        assert restored.alphabet_size == mapping.alphabet_size
        assert restored.block_length == mapping.block_length
        assert restored.num_codewords == mapping.num_codewords
        assert restored.guaranteed_distance == mapping.guaranteed_distance
        assert list(restored.codewords()) == list(mapping.codewords())


class TestRegistry:
    def test_every_codec_is_reachable(self):
        for name in CODECS:
            assert get_codec(name) is CODECS[name]

    def test_unknown_codec_raises_helpfully(self):
        with pytest.raises(KeyError, match="unknown codec"):
            get_codec("no_such_codec")
