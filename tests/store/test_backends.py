"""Backend contract tests: LRU budget semantics and disk durability."""

from repro.store import DiskBackend, MemoryBackend, default_cache_dir


class TestMemoryBackend:
    def test_round_trip(self):
        backend = MemoryBackend()
        backend.put("k1", "json", b"payload", kind="test")
        assert backend.get("k1") == ("json", b"payload")
        assert backend.get("absent") is None

    def test_lru_eviction_respects_byte_budget(self):
        backend = MemoryBackend(max_bytes=10)
        backend.put("a", "json", b"aaaa")
        backend.put("b", "json", b"bbbb")
        backend.put("c", "json", b"cccc")  # 12 bytes total: evict "a"
        assert backend.get("a") is None
        assert backend.get("b") is not None
        assert backend.get("c") is not None

    def test_get_refreshes_recency(self):
        backend = MemoryBackend(max_bytes=10)
        backend.put("a", "json", b"aaaa")
        backend.put("b", "json", b"bbbb")
        backend.get("a")  # "b" is now least recently used
        backend.put("c", "json", b"cccc")
        assert backend.get("a") is not None
        assert backend.get("b") is None

    def test_oversized_payload_is_not_cached(self):
        backend = MemoryBackend(max_bytes=4)
        backend.put("big", "json", b"toolarge")
        assert backend.get("big") is None
        assert backend.stats()["entries"] == 0

    def test_overwrite_replaces_bytes(self):
        backend = MemoryBackend()
        backend.put("k", "json", b"aaaa")
        backend.put("k", "json", b"bb")
        assert backend.get("k") == ("json", b"bb")
        assert backend.stats()["bytes"] == 2

    def test_clear_reports_removals(self):
        backend = MemoryBackend()
        backend.put("k1", "json", b"aaaa")
        backend.put("k2", "json", b"bb")
        assert backend.clear() == (2, 6)
        assert backend.stats()["entries"] == 0

    def test_stats_groups_by_kind(self):
        backend = MemoryBackend()
        backend.put("k1", "json", b"aa", kind="alpha")
        backend.put("k2", "json", b"bb", kind="alpha")
        backend.put("k3", "json", b"cc", kind="beta")
        stats = backend.stats()
        assert stats["kinds"]["alpha"] == {"entries": 2, "bytes": 4}
        assert stats["kinds"]["beta"] == {"entries": 1, "bytes": 2}


class TestDiskBackend:
    def test_round_trip_and_layout(self, tmp_path):
        backend = DiskBackend(tmp_path / "cache")
        key = "ab" + "0" * 62
        backend.put(key, "graph", b"\x00binary\xff", kind="test.kind")
        assert backend.get(key) == ("graph", b"\x00binary\xff")
        payload = tmp_path / "cache" / "objects" / "ab" / f"{key}.bin"
        assert payload.exists()
        assert (tmp_path / "cache" / "index.sqlite").exists()

    def test_two_backends_share_a_root(self, tmp_path):
        writer = DiskBackend(tmp_path / "cache")
        writer.put("k" * 64, "json", b"shared", kind="test")
        reader = DiskBackend(tmp_path / "cache")
        assert reader.get("k" * 64) == ("json", b"shared")

    def test_missing_payload_degrades_to_miss(self, tmp_path):
        backend = DiskBackend(tmp_path / "cache")
        key = "cd" + "0" * 62
        backend.put(key, "json", b"data", kind="test")
        (tmp_path / "cache" / "objects" / "cd" / f"{key}.bin").unlink()
        assert backend.get(key) is None

    def test_clear_removes_index_and_payloads(self, tmp_path):
        backend = DiskBackend(tmp_path / "cache")
        backend.put("a" * 64, "json", b"xx", kind="t")
        backend.put("b" * 64, "json", b"yyy", kind="t")
        assert backend.clear() == (2, 5)
        assert backend.stats()["entries"] == 0
        assert backend.get("a" * 64) is None

    def test_stats_kinds_and_root(self, tmp_path):
        backend = DiskBackend(tmp_path / "cache")
        backend.put("a" * 64, "json", b"xx", kind="alpha")
        backend.put("b" * 64, "json", b"yyy", kind="beta")
        stats = backend.stats()
        assert stats["root"] == str(tmp_path / "cache")
        assert stats["kinds"]["alpha"]["entries"] == 1
        assert stats["kinds"]["beta"]["bytes"] == 3

    def test_default_root_honours_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        assert default_cache_dir() == str(tmp_path / "env-cache")
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert default_cache_dir() == ".repro-cache"

    def test_stats_counts_unindexed_payloads_from_disk(self, tmp_path):
        backend = DiskBackend(tmp_path / "cache")
        backend.put("a" * 64, "json", b"xx", kind="alpha")
        # Simulate an index insert that failed after the payload landed:
        # drop the row but keep the payload file.
        import contextlib
        import sqlite3

        with contextlib.closing(
            sqlite3.connect(tmp_path / "cache" / "index.sqlite")
        ) as connection:
            connection.execute("DELETE FROM entries")
            connection.commit()
        orphan = tmp_path / "cache" / "objects" / "aa" / (("a" * 64) + ".bin")
        assert orphan.is_file()
        stats = backend.stats()
        assert stats["kinds"]["(unindexed)"] == {"entries": 1, "bytes": 2}
        assert stats["entries"] == 1
        assert stats["bytes"] == 2

    def test_stats_ignores_tmp_files_and_trusts_the_index(self, tmp_path):
        backend = DiskBackend(tmp_path / "cache")
        backend.put("a" * 64, "json", b"xx", kind="alpha")
        # In-flight writes and indexed payloads are not "(unindexed)".
        (tmp_path / "cache" / "objects" / "aa" / "partial.tmp").write_bytes(b"junk")
        stats = backend.stats()
        assert "(unindexed)" not in stats["kinds"]
        assert stats["entries"] == 1
        assert stats["bytes"] == 2
