"""Performance guard rails.

Not micro-benchmarks (those live in ``benchmarks/``): these are
generous wall-clock ceilings that fail loudly if a core path regresses
by an order of magnitude — the exact solver on the gadget shape, the
family build, and the simulation loop.
"""

import random
import time

import pytest

from repro.commcc import pairwise_disjoint_inputs
from repro.congest import CongestNetwork, LubyMIS
from repro.gadgets import GadgetParameters, LinearConstruction
from repro.graphs import random_graph
from repro.maxis import max_weight_independent_set


def _timed(callable_, budget_seconds):
    start = time.perf_counter()
    result = callable_()
    elapsed = time.perf_counter() - start
    assert elapsed < budget_seconds, (
        f"took {elapsed:.2f}s, budget {budget_seconds}s"
    )
    return result


class TestSolverBudgets:
    def test_gadget_280_nodes_under_two_seconds(self):
        construction = LinearConstruction(GadgetParameters(ell=6, alpha=1, t=5))
        result = _timed(
            lambda: max_weight_independent_set(construction.graph), 2.0
        )
        assert result.weight > 0

    def test_weighted_instance_solve_under_two_seconds(self):
        params = GadgetParameters(ell=6, alpha=1, t=5)
        construction = LinearConstruction(params)
        inputs = pairwise_disjoint_inputs(params.k, params.t, rng=random.Random(1))
        graph = construction.apply_inputs(inputs)
        _timed(lambda: max_weight_independent_set(graph), 2.0)

    def test_random_graph_40_nodes_under_two_seconds(self):
        graph = random_graph(40, 0.3, rng=random.Random(2), weight_range=(1, 9))
        _timed(lambda: max_weight_independent_set(graph), 2.0)


class TestConstructionBudgets:
    def test_large_linear_build_under_two_seconds(self):
        _timed(lambda: LinearConstruction(GadgetParameters(ell=6, alpha=1, t=5)), 2.0)

    def test_family_instance_build_under_one_second(self):
        params = GadgetParameters(ell=6, alpha=1, t=5)
        construction = LinearConstruction(params)
        inputs = pairwise_disjoint_inputs(params.k, params.t, rng=random.Random(3))
        _timed(lambda: construction.apply_inputs(inputs), 1.0)


class TestSimulatorBudgets:
    def test_luby_on_200_nodes_under_three_seconds(self):
        graph = random_graph(200, 0.05, rng=random.Random(4))

        def run():
            net = CongestNetwork(graph, LubyMIS, bandwidth_multiplier=2, seed=5)
            net.run(max_rounds=10_000)
            return net

        net = _timed(run, 3.0)
        mis = {v for v, joined in net.outputs().items() if joined}
        assert graph.is_independent_set(mis)
