"""Performance guard rails.

Not micro-benchmarks (those live in ``benchmarks/``): these are
generous wall-clock ceilings that fail loudly if a core path regresses
by an order of magnitude — the exact solver on the gadget shape, the
family build, and the simulation loop.
"""

import random
import time

import pytest

from repro.commcc import pairwise_disjoint_inputs
from repro.congest import CongestNetwork, LubyMIS
from repro.gadgets import GadgetParameters, LinearConstruction
from repro.graphs import random_graph
from repro.maxis import max_weight_independent_set


def _timed(callable_, budget_seconds):
    start = time.perf_counter()
    result = callable_()
    elapsed = time.perf_counter() - start
    assert elapsed < budget_seconds, (
        f"took {elapsed:.2f}s, budget {budget_seconds}s"
    )
    return result


class TestSolverBudgets:
    def test_gadget_280_nodes_under_two_seconds(self):
        construction = LinearConstruction(GadgetParameters(ell=6, alpha=1, t=5))
        result = _timed(
            lambda: max_weight_independent_set(construction.graph), 2.0
        )
        assert result.weight > 0

    def test_weighted_instance_solve_under_two_seconds(self):
        params = GadgetParameters(ell=6, alpha=1, t=5)
        construction = LinearConstruction(params)
        inputs = pairwise_disjoint_inputs(params.k, params.t, rng=random.Random(1))
        graph = construction.apply_inputs(inputs)
        _timed(lambda: max_weight_independent_set(graph), 2.0)

    def test_random_graph_40_nodes_under_two_seconds(self):
        graph = random_graph(40, 0.3, rng=random.Random(2), weight_range=(1, 9))
        _timed(lambda: max_weight_independent_set(graph), 2.0)


class TestConstructionBudgets:
    def test_large_linear_build_under_two_seconds(self):
        _timed(lambda: LinearConstruction(GadgetParameters(ell=6, alpha=1, t=5)), 2.0)

    def test_family_instance_build_under_one_second(self):
        params = GadgetParameters(ell=6, alpha=1, t=5)
        construction = LinearConstruction(params)
        inputs = pairwise_disjoint_inputs(params.k, params.t, rng=random.Random(3))
        _timed(lambda: construction.apply_inputs(inputs), 1.0)


class TestDeepProfilerOverhead:
    def test_sampler_overhead_within_five_percent(self):
        """The --deep-profile acceptance bound: <=5% at the default hz.

        Sampling happens on a separate daemon thread, so the profiled
        thread only pays for GIL handoffs during stack walks.  Both
        sides take the min of three runs to shave scheduler noise, and
        a small absolute slack keeps the 5% relative bound meaningful
        on a sub-second workload.
        """
        from repro.obs.deepprof import DeepProfiler

        def spin(iterations=2_000_000):
            # Fixed work, not a wall-clock deadline: the measurement
            # must be able to get slower under sampling.
            total = 0
            for index in range(iterations):
                total += index * index
            return total

        def timed(profiled):
            best = float("inf")
            for _ in range(3):
                if profiled:
                    profiler = DeepProfiler()  # DEFAULT_HZ
                    profiler.start()
                start = time.perf_counter()
                spin()
                elapsed = time.perf_counter() - start
                if profiled:
                    profiler.stop()
                best = min(best, elapsed)
            return best

        plain = timed(profiled=False)
        sampled = timed(profiled=True)
        assert sampled <= plain * 1.05 + 0.010, (
            f"sampler overhead {((sampled / plain) - 1) * 100:.1f}% "
            f"(plain {plain:.3f}s, profiled {sampled:.3f}s)"
        )


class TestSimulatorBudgets:
    def test_luby_on_200_nodes_under_three_seconds(self):
        graph = random_graph(200, 0.05, rng=random.Random(4))

        def run():
            net = CongestNetwork(graph, LubyMIS, bandwidth_multiplier=2, seed=5)
            net.run(max_rounds=10_000)
            return net

        net = _timed(run, 3.0)
        mis = {v for v, joined in net.outputs().items() if joined}
        assert graph.is_independent_set(mis)
