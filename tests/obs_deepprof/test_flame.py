"""Tests for folded-stack parsing and the inline-SVG flamegraph."""

import pytest

from repro.obs import deepprof
from repro.obs.flame import (
    flamegraph_svg,
    folded_from_spans,
    parse_folded,
)
from repro.obs.recorder import Recorder


class TestParseFolded:
    def test_parses_stack_count_lines(self):
        text = "span:a;m:f 3\nm:g 1\n"
        assert parse_folded(text) == {"span:a;m:f": 3, "m:g": 1}

    def test_blank_lines_ignored(self):
        assert parse_folded("\n  \nm:f 2\n\n") == {"m:f": 2}

    def test_duplicate_keys_accumulate(self):
        assert parse_folded("m:f 2\nm:f 3\n") == {"m:f": 5}

    def test_malformed_line_names_the_line_number(self):
        with pytest.raises(ValueError, match="line 2"):
            parse_folded("m:f 1\nnot-a-folded-line\n")

    def test_non_numeric_count_rejected(self):
        with pytest.raises(ValueError, match="line 1"):
            parse_folded("m:f -3\n")

    def test_round_trips_with_folded_lines(self):
        samples = {"span:a;m:f": 3, "span:a;span:b;m:g": 2, "m:h": 1}
        assert parse_folded(deepprof.folded_lines(samples)) == samples

    def test_empty_text(self):
        assert parse_folded("") == {}


class TestFoldedFromSpans:
    def test_weights_are_self_time_microseconds(self):
        spans = [
            {"index": 0, "parent": None, "name": "root", "duration_s": 1.0},
            {"index": 1, "parent": 0, "name": "child", "duration_s": 0.4},
        ]
        assert folded_from_spans(spans) == {
            "root": 600_000,
            "root;child": 400_000,
        }

    def test_zero_self_time_spans_are_dropped(self):
        spans = [
            {"index": 0, "parent": None, "name": "wrapper", "duration_s": 0.5},
            {"index": 1, "parent": 0, "name": "inner", "duration_s": 0.5},
        ]
        assert folded_from_spans(spans) == {"wrapper;inner": 500_000}

    def test_names_are_cleaned_for_folded_keys(self):
        spans = [
            {"index": 0, "parent": None, "name": "a b;c", "duration_s": 0.1}
        ]
        assert folded_from_spans(spans) == {"a_b,c": 100_000}

    def test_accepts_span_records(self):
        recorder = Recorder(enabled=True)
        with recorder.span("outer"):
            with recorder.span("inner"):
                pass
        samples = folded_from_spans(recorder.spans)
        assert all(key.startswith("outer") for key in samples)

    def test_empty(self):
        assert folded_from_spans([]) == {}


class TestFlamegraphSvg:
    SAMPLES = {"span:a;m:f": 30, "span:a;m:g": 20, "m:h": 10}

    def test_byte_deterministic(self):
        assert flamegraph_svg(self.SAMPLES) == flamegraph_svg(
            dict(reversed(list(self.SAMPLES.items())))
        )

    def test_self_contained_single_svg(self):
        svg = flamegraph_svg(self.SAMPLES)
        assert svg.startswith('<svg xmlns="http://www.w3.org/2000/svg"')
        assert svg.rstrip().endswith("</svg>")
        assert "<script" not in svg
        # No external references: the xmlns is the only URL.
        assert svg.count("http") == 1

    def test_title_reports_the_sample_total(self):
        svg = flamegraph_svg(self.SAMPLES, title="demo profile")
        assert "demo profile" in svg
        assert "(60 samples)" in svg

    def test_width_is_honored(self):
        svg = flamegraph_svg(self.SAMPLES, width=777)
        assert 'width="777"' in svg

    def test_hostile_names_are_escaped(self):
        samples = {'<evil>&"name";x 10': 10}
        svg = flamegraph_svg(samples, title='<t> & "q"')
        assert "<evil>" not in svg
        assert "&lt;evil&gt;" in svg
        assert "<t>" not in svg
        # Every ampersand is part of an entity, never raw.
        for index in [i for i, c in enumerate(svg) if c == "&"]:
            assert svg[index : index + 4] in ("&lt;", "&gt;", "&amp") or svg[
                index : index + 6
            ].startswith("&quot;")

    def test_tooltips_present_for_every_frame(self):
        svg = flamegraph_svg(self.SAMPLES)
        for name in ("span:a", "m:f", "m:g", "m:h"):
            assert f"<title>{name} — " in svg

    def test_empty_profile_still_renders(self):
        svg = flamegraph_svg({})
        assert svg.startswith("<svg")
        assert "(0 samples)" in svg
