"""Tests for the sampling profiler / memory telemetry core.

Sampling itself is stochastic, so these tests drive the profiler over
workloads long enough that "at least one sample landed" is effectively
certain, and pin everything around the sampling — key construction,
folded/speedscope exports, the absorb merge, the critical path — as
exact deterministic contracts.
"""

import json
import time

import pytest

from repro.obs import deepprof
from repro.obs.deepprof import DeepProfiler
from repro.obs.recorder import Recorder


def _busy(seconds):
    """Deterministic CPU spin: a sampler always catches a busy loop."""
    deadline = time.perf_counter() + seconds
    total = 0
    while time.perf_counter() < deadline:
        total += 1
    return total


class TestSampler:
    def test_busy_loop_is_sampled(self):
        with DeepProfiler(hz=250.0) as profiler:
            _busy(0.2)
        assert profiler.total_samples >= 10
        assert profiler.samples
        assert any("_busy" in key for key in profiler.samples)

    def test_samples_attribute_to_open_spans(self):
        recorder = Recorder(enabled=True)
        with DeepProfiler(hz=250.0, recorder=recorder) as profiler:
            with recorder.span("outer"):
                with recorder.span("inner"):
                    _busy(0.2)
        attributed = [
            key
            for key in profiler.samples
            if key.startswith("span:outer;span:inner;")
        ]
        assert attributed, sorted(profiler.samples)

    def test_paused_suppresses_sampling(self):
        profiler = DeepProfiler(hz=250.0).start()
        try:
            with profiler.paused():
                # A sample may land between start() and the pause (and
                # one may be in flight), so assert on the delta with a
                # one-sample tolerance rather than on zero.
                before = profiler.total_samples
                _busy(0.2)
                delta = profiler.total_samples - before
        finally:
            profiler.stop()
        assert delta <= 1  # ~50 samples would land unpaused

    def test_pause_is_nested_safe(self):
        profiler = DeepProfiler(hz=250.0).start()
        try:
            with profiler.paused():
                with profiler.paused():
                    pass
                before = profiler.total_samples
                _busy(0.1)
                assert profiler.total_samples - before <= 1
            _busy(0.2)
        finally:
            profiler.stop()
        assert profiler.total_samples > 0

    def test_double_start_raises(self):
        profiler = DeepProfiler().start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                profiler.start()
        finally:
            profiler.stop()

    def test_stop_without_start_is_a_noop(self):
        DeepProfiler().stop()

    def test_invalid_hz_raises(self):
        with pytest.raises(ValueError, match="positive"):
            DeepProfiler(hz=0)

    def test_memory_only_mode_collects_no_stacks(self):
        with DeepProfiler(hz=250.0, sample_stacks=False, memory=True) as prof:
            _busy(0.1)
        assert prof.samples == {}
        assert prof.state()["memory"] is not None

    def test_config_roundtrip(self):
        profiler = DeepProfiler(hz=11.0, memory=True, max_depth=9)
        clone = DeepProfiler.from_config(profiler.config())
        assert clone.config() == profiler.config()


class TestKeyConstruction:
    def test_clean_segment_strips_separators(self):
        assert deepprof._clean_segment("a b;c") == "a_b,c"

    def test_trim_cuts_at_the_deepest_anchor(self):
        anchor = "repro.parallel.jobs:execute_unit"
        labels = ["cli:main", anchor, "engine:loop", anchor, "maxis:solve"]
        assert deepprof._trim_stack(labels) == ["maxis:solve"]

    def test_trim_keeps_unanchored_stacks(self):
        labels = ["cli:main", "maxis:solve"]
        assert deepprof._trim_stack(labels) == labels


class TestFoldedExports:
    SAMPLES = {
        "span:a;m:f": 3,
        "span:a;span:b;m:g": 2,
        "m:h": 1,
        "m:zero": 0,
    }

    def test_folded_lines_sorted_and_zero_free(self):
        text = deepprof.folded_lines(self.SAMPLES)
        assert text == "m:h 1\nspan:a;m:f 3\nspan:a;span:b;m:g 2\n"

    def test_folded_lines_empty(self):
        assert deepprof.folded_lines({}) == ""

    def test_span_folded_collapses_to_span_prefixes(self):
        assert deepprof.span_folded(self.SAMPLES) == {
            "": 1,
            "span:a": 3,
            "span:a;span:b": 2,
        }

    def test_structural_span_keys_drop_the_stochastic_tail(self):
        samples = {"span:a;m:f": 990, "span:b;m:g": 9}
        assert deepprof.structural_span_keys(samples) == frozenset(
            {"span:a"}
        )

    def test_structural_span_keys_empty_profile(self):
        assert deepprof.structural_span_keys({}) == frozenset()

    def test_speedscope_document_is_deterministic(self):
        first = deepprof.speedscope_document(self.SAMPLES)
        second = deepprof.speedscope_document(dict(self.SAMPLES))
        assert deepprof.dump_speedscope(first) == deepprof.dump_speedscope(
            second
        )

    def test_speedscope_weights_and_frames(self):
        document = deepprof.speedscope_document(self.SAMPLES, name="x")
        profile = document["profiles"][0]
        assert profile["type"] == "sampled"
        assert sum(profile["weights"]) == 6
        assert profile["endValue"] == 6
        names = [frame["name"] for frame in document["shared"]["frames"]]
        # First-appearance order over sorted keys.
        assert names == ["m:h", "span:a", "m:f", "span:b", "m:g"]
        # Every stack's indices resolve.
        for stack in profile["samples"]:
            assert all(0 <= index < len(names) for index in stack)

    def test_dump_speedscope_parses_back(self):
        text = deepprof.dump_speedscope(
            deepprof.speedscope_document(self.SAMPLES)
        )
        assert text.endswith("\n")
        assert json.loads(text)["profiles"]


class TestAbsorb:
    def _worker_state(self, samples, total=None, memory=None):
        return {
            "schema_version": deepprof.DEEPPROF_SCHEMA_VERSION,
            "hz": deepprof.DEFAULT_HZ,
            "sample_stacks": True,
            "total_samples": total if total is not None else sum(samples.values()),
            "duration_s": 0.5,
            "merged_profiles": 0,
            "samples": samples,
            "memory": memory,
        }

    def test_absorb_prefixes_with_the_span_path(self):
        parent = DeepProfiler()
        parent.absorb(
            self._worker_state({"m:f": 2, "span:unit;m:g": 1}),
            span_prefix=("parallel.run",),
        )
        assert parent.samples == {
            "span:parallel.run;m:f": 2,
            "span:parallel.run;span:unit;m:g": 1,
        }
        assert parent.total_samples == 3
        assert parent.merged_profiles == 1

    def test_absorb_without_prefix_keeps_keys(self):
        parent = DeepProfiler()
        parent.absorb(self._worker_state({"m:f": 2}))
        assert parent.samples == {"m:f": 2}

    def test_absorb_accumulates_across_workers(self):
        parent = DeepProfiler()
        state = self._worker_state({"m:f": 2})
        parent.absorb(state, span_prefix=("run",))
        parent.absorb(state, span_prefix=("run",))
        assert parent.samples == {"span:run;m:f": 4}
        assert parent.merged_profiles == 2

    def test_absorb_is_order_independent(self):
        one = self._worker_state({"m:f": 2, "m:g": 1})
        two = self._worker_state({"m:f": 5})
        forward, backward = DeepProfiler(), DeepProfiler()
        forward.absorb(one), forward.absorb(two)
        backward.absorb(two), backward.absorb(one)
        assert forward.samples == backward.samples

    def test_absorb_merges_memory(self):
        parent = DeepProfiler()
        memory = {
            "current_bytes": 10,
            "peak_bytes": 700,
            "span_peak_bytes": {"span:unit": 600},
            "top_allocations": [
                {"site": "maxis/exact.py:1", "size_bytes": 64, "count": 2}
            ],
        }
        parent.absorb(
            self._worker_state({}, total=0, memory=memory),
            span_prefix=("run",),
        )
        parent.absorb(
            self._worker_state({}, total=0, memory=memory),
            span_prefix=("run",),
        )
        state = parent.state()["memory"]
        assert state["peak_bytes"] == 700  # peaks max, not sum
        assert state["span_peak_bytes"] == {"span:run;span:unit": 600}
        assert state["top_allocations"] == [
            {"site": "maxis/exact.py:1", "size_bytes": 128, "count": 4}
        ]

    def test_state_json_roundtrip(self):
        profiler = DeepProfiler(memory=True)
        profiler.absorb(self._worker_state({"m:f": 1}))
        state = profiler.state()
        assert json.loads(json.dumps(state)) == state


class TestTopFrames:
    def test_leaf_fractions_skip_span_leaves(self):
        profiler = DeepProfiler()
        profiler.samples = {
            "span:a;m:f": 6,
            "span:b;m:f": 2,
            "m:g": 2,
            "span:only": 5,  # span leaf: no frame information
        }
        assert profiler.top_frames() == {"m:f": 0.8, "m:g": 0.2}

    def test_limit_and_tiebreak(self):
        profiler = DeepProfiler()
        profiler.samples = {"m:b": 1, "m:a": 1, "m:c": 2}
        assert list(profiler.top_frames(limit=2)) == ["m:c", "m:a"]

    def test_empty(self):
        assert DeepProfiler().top_frames() == {}


class TestMemoryTelemetry:
    def test_peaks_and_allocation_sites(self):
        recorder = Recorder(enabled=True)
        with DeepProfiler(
            hz=250.0, sample_stacks=False, memory=True, recorder=recorder
        ) as profiler:
            with recorder.span("alloc.phase"):
                blob = [bytes(1024) for _ in range(2000)]
                _busy(0.1)
        memory = profiler.state()["memory"]
        assert len(blob) == 2000  # kept alive through stop()'s snapshot
        assert memory["peak_bytes"] > 1024 * 1024
        assert any(
            key.startswith("span:alloc.phase")
            for key in memory["span_peak_bytes"]
        )
        assert memory["top_allocations"]
        for entry in memory["top_allocations"]:
            assert entry["size_bytes"] > 0
            assert ":" in entry["site"]
        # The profiler filters its own allocations out of the report
        # ("obs/deepprof.py", not this test file's "test_deepprof.py").
        assert not any(
            "obs/deepprof.py" in entry["site"]
            for entry in memory["top_allocations"]
        )


class TestCriticalPath:
    SPANS = [
        {"index": 0, "parent": None, "depth": 0, "name": "root", "duration_s": 1.0},
        {"index": 1, "parent": 0, "depth": 1, "name": "big", "duration_s": 0.6},
        {"index": 2, "parent": 0, "depth": 1, "name": "small", "duration_s": 0.3},
        {"index": 3, "parent": 1, "depth": 2, "name": "leaf", "duration_s": 0.5},
    ]

    def test_follows_the_longest_child_chain(self):
        rows = deepprof.critical_path(self.SPANS)
        assert [row["name"] for row in rows] == ["root", "big", "leaf"]

    def test_self_time_subtracts_children(self):
        rows = {row["name"]: row for row in deepprof.critical_path(self.SPANS)}
        assert rows["root"]["self_s"] == pytest.approx(0.1)
        assert rows["big"]["self_s"] == pytest.approx(0.1)
        assert rows["leaf"]["self_s"] == pytest.approx(0.5)
        assert rows["root"]["share"] == 1.0
        assert rows["big"]["share"] == pytest.approx(0.6)
        assert rows["root"]["children"] == 2

    def test_longest_root_wins(self):
        spans = [
            {"index": 0, "parent": None, "name": "short", "duration_s": 0.1},
            {"index": 1, "parent": None, "name": "long", "duration_s": 0.9},
        ]
        assert deepprof.critical_path(spans)[0]["name"] == "long"

    def test_empty_spans(self):
        assert deepprof.critical_path([]) == []

    def test_accepts_span_records(self):
        recorder = Recorder(enabled=True)
        with recorder.span("outer"):
            with recorder.span("inner"):
                pass
        rows = deepprof.critical_path(recorder.spans)
        assert [row["name"] for row in rows] == ["outer", "inner"]

    def test_render_mentions_every_hop(self):
        table = deepprof.render_critical_path(self.SPANS)
        for name in ("root", "big", "leaf"):
            assert name in table
        assert deepprof.render_critical_path([]) == "(no spans recorded)"


class TestArtifacts:
    def test_write_artifacts_round_trips(self, tmp_path):
        profiler = DeepProfiler()
        profiler.samples = {"span:a;m:f": 3, "m:g": 1}
        profiler.total_samples = 4
        paths = deepprof.write_artifacts(
            "demo", profiler, tmp_path, spans=self_spans()
        )
        document = json.loads(paths["document"].read_text())
        assert document["kind"] == "deep_profile"
        assert document["name"] == "demo"
        assert document["schema_version"] == deepprof.DEEPPROF_SCHEMA_VERSION
        assert document["samples"] == profiler.samples
        assert [row["name"] for row in document["critical_path"]] == ["root"]
        from repro.obs.flame import parse_folded

        assert parse_folded(paths["folded"].read_text()) == profiler.samples
        speedscope = json.loads(paths["speedscope"].read_text())
        assert speedscope["profiles"][0]["endValue"] == 4

    def test_artifacts_are_byte_deterministic(self, tmp_path):
        profiler = DeepProfiler()
        profiler.samples = {"span:a;m:f": 3}
        first = deepprof.write_artifacts("x", profiler, tmp_path / "a")
        second = deepprof.write_artifacts("x", profiler, tmp_path / "b")
        for key in first:
            assert first[key].read_bytes() == second[key].read_bytes()


def self_spans():
    return [
        {"index": 0, "parent": None, "depth": 0, "name": "root", "duration_s": 1.0}
    ]


class TestAmbient:
    def test_using_profiler_installs_and_restores(self):
        assert deepprof.get_profiler() is None
        profiler = DeepProfiler()
        with deepprof.using_profiler(profiler):
            assert deepprof.get_profiler() is profiler
            assert deepprof.ambient_config() == profiler.config()
        assert deepprof.get_profiler() is None
        assert deepprof.ambient_config() is None

    def test_hard_reset_hook_clears_the_ambient_profiler(self):
        from repro import obs

        profiler = DeepProfiler()
        with deepprof.using_profiler(profiler):
            obs.get_recorder().hard_reset()
            assert deepprof.get_profiler() is None
