"""End-to-end CLI tests for the deep-profile plane.

These drive ``repro <cmd> --deep-profile`` / ``repro flame`` /
``repro stats`` through ``main`` exactly as a user would, against real
(small) sweeps — the acceptance contract is that profiling artifacts
exist, parse, and attribute samples to solver internals.
"""

import json

import pytest

from repro import obs
from repro.cli import main
from repro.obs import deepprof
from repro.obs.flame import parse_folded


@pytest.fixture()
def profiled_run(tmp_path_factory):
    """One shared theorem2 deep+mem profile run (it costs ~2s)."""
    out = tmp_path_factory.mktemp("deepprof")
    code = main(
        [
            "theorem2",
            "--max-t",
            "3",
            "--samples",
            "4",
            "--deep-profile",
            "250",
            "--mem-profile",
            "--deep-profile-out",
            str(out),
        ]
    )
    assert code == 0
    return out


class TestDeepProfileFlag:
    def test_writes_all_three_artifacts(self, profiled_run):
        assert (profiled_run / "DEEPPROF_theorem2.json").is_file()
        assert (profiled_run / "theorem2.folded").is_file()
        assert (profiled_run / "theorem2.speedscope.json").is_file()

    def test_document_shape(self, profiled_run):
        document = json.loads(
            (profiled_run / "DEEPPROF_theorem2.json").read_text()
        )
        assert document["kind"] == "deep_profile"
        assert document["name"] == "theorem2"
        assert document["schema_version"] == deepprof.DEEPPROF_SCHEMA_VERSION
        assert document["total_samples"] > 0
        # The sweep runs under the recorder, so a critical path exists;
        # its root is the longest top-level span (the command span
        # itself only appears when --profile is also given).
        assert document["critical_path"], "spans should be recorded"
        assert document["critical_path"][0]["share"] == 1.0
        assert document["memory"]["peak_bytes"] > 0

    def test_folded_parses_and_matches_document(self, profiled_run):
        document = json.loads(
            (profiled_run / "DEEPPROF_theorem2.json").read_text()
        )
        folded = parse_folded((profiled_run / "theorem2.folded").read_text())
        assert folded == document["samples"]

    def test_samples_reach_maxis_solver_internals(self, profiled_run):
        folded = parse_folded((profiled_run / "theorem2.folded").read_text())
        assert any("repro.maxis" in key for key in folded)

    def test_speedscope_is_valid(self, profiled_run):
        speedscope = json.loads(
            (profiled_run / "theorem2.speedscope.json").read_text()
        )
        assert speedscope["profiles"][0]["type"] == "sampled"
        assert speedscope["profiles"][0]["endValue"] > 0

    def test_recorder_left_disabled_afterwards(self, profiled_run):
        assert not obs.is_enabled()
        assert deepprof.get_profiler() is None

    def test_mem_profile_alone_skips_stacks(self, tmp_path, capsys):
        code = main(
            [
                "claims",
                "--samples",
                "1",
                "--mem-profile",
                "--deep-profile-out",
                str(tmp_path),
            ]
        )
        assert code == 0
        document = json.loads(
            (tmp_path / "DEEPPROF_claims.json").read_text()
        )
        assert document["sample_stacks"] is False
        assert document["samples"] == {}
        assert document["memory"]["peak_bytes"] > 0
        assert "peak traced" in capsys.readouterr().out


class TestSingleEnablement:
    def test_flag_combination_produces_one_meta_line(self, tmp_path):
        """--deep-profile + --profile-json + --live-out used to stack

        recorder enables; the single `_recording_enabled()` path must
        yield exactly one recorder setup, hence one meta line per sink.
        """
        events = tmp_path / "events.jsonl"
        live = tmp_path / "live.jsonl"
        code = main(
            [
                "theorem1",
                "--max-t",
                "2",
                "--samples",
                "1",
                "--deep-profile",
                "100",
                "--profile-json",
                str(events),
                "--live-out",
                str(live),
                "--deep-profile-out",
                str(tmp_path),
            ]
        )
        assert code == 0
        meta_lines = [
            json.loads(line)
            for line in events.read_text().splitlines()
            if json.loads(line).get("type") == "meta"
        ]
        assert len(meta_lines) == 1
        # And the meta line is the first line of the stream.
        first = json.loads(events.read_text().splitlines()[0])
        assert first["type"] == "meta"


class TestFlameCommand:
    FOLDED = "span:a;m:f 30\nspan:a;m:g 20\nm:h 10\n"

    def test_from_folded_file_default_out(self, tmp_path, capsys):
        source = tmp_path / "run.folded"
        source.write_text(self.FOLDED)
        assert main(["flame", str(source)]) == 0
        svg = (tmp_path / "run.svg").read_text()
        assert svg.startswith("<svg")
        assert "(60 samples)" in svg
        assert str(tmp_path / "run.svg") in capsys.readouterr().out

    def test_from_deepprof_document(self, tmp_path):
        source = tmp_path / "DEEPPROF_x.json"
        source.write_text(
            json.dumps({"kind": "deep_profile", "samples": {"m:f": 5}})
        )
        out = tmp_path / "x.svg"
        assert main(["flame", str(source), "--out", str(out)]) == 0
        assert "(5 samples)" in out.read_text()

    def test_from_events_jsonl(self, tmp_path):
        events = tmp_path / "events.jsonl"
        with obs.recording(jsonl_path=events) as recorder:
            with recorder.span("outer"):
                with recorder.span("inner"):
                    pass
        out = tmp_path / "spans.svg"
        assert main(["flame", str(events), "--out", str(out)]) == 0
        assert out.read_text().startswith("<svg")

    def test_title_and_width_flags(self, tmp_path):
        source = tmp_path / "run.folded"
        source.write_text(self.FOLDED)
        out = tmp_path / "run.svg"
        assert (
            main(
                [
                    "flame",
                    str(source),
                    "--out",
                    str(out),
                    "--title",
                    "my sweep",
                    "--width",
                    "640",
                ]
            )
            == 0
        )
        svg = out.read_text()
        assert "my sweep" in svg
        assert 'width="640"' in svg

    def test_missing_input_exits_2(self, tmp_path, capsys):
        assert main(["flame", str(tmp_path / "nope.folded")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_empty_input_exits_2(self, tmp_path, capsys):
        source = tmp_path / "empty.folded"
        source.write_text("")
        assert main(["flame", str(source)]) == 2
        assert "no stack samples" in capsys.readouterr().err

    def test_malformed_input_exits_2(self, tmp_path, capsys):
        source = tmp_path / "bad.folded"
        source.write_text("this is not folded\noutput at all\n")
        assert main(["flame", str(source)]) == 2
        assert "cannot read" in capsys.readouterr().err


class TestStatsFriendlyPaths:
    def test_missing_file_is_not_an_error(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "never-written.jsonl")]) == 0
        out = capsys.readouterr().out
        assert "no events recorded" in out
        assert "--profile-json" in out

    def test_empty_file_is_not_an_error(self, tmp_path, capsys):
        events = tmp_path / "events.jsonl"
        events.write_text("")
        assert main(["stats", str(events)]) == 0
        assert "no events recorded" in capsys.readouterr().out

    def test_unparseable_file_is_not_an_error(self, tmp_path, capsys):
        events = tmp_path / "events.jsonl"
        events.write_text("not json\nstill not json\n")
        assert main(["stats", str(events)]) == 0
        assert "no parseable event lines" in capsys.readouterr().out
