"""Tests for the ASCII chart helpers."""

import pytest

from repro.analysis import horizontal_bar_chart, sparkline, trend_chart


class TestBarChart:
    def test_full_bar_for_max(self):
        chart = horizontal_bar_chart(["a", "b"], [10, 5], width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_labels_aligned(self):
        chart = horizontal_bar_chart(["x", "longer"], [1, 2], width=4)
        lines = chart.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_explicit_max(self):
        chart = horizontal_bar_chart(["a"], [5], width=10, max_value=10)
        assert chart.count("#") == 5

    def test_values_capped_at_max(self):
        chart = horizontal_bar_chart(["a"], [20], width=10, max_value=10)
        assert chart.count("#") == 10

    def test_empty(self):
        assert "empty" in horizontal_bar_chart([], [])

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            horizontal_bar_chart(["a"], [1, 2])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            horizontal_bar_chart(["a"], [-1])

    def test_all_zero_values(self):
        chart = horizontal_bar_chart(["a"], [0], width=8)
        assert "#" not in chart


class TestTrendChart:
    def test_target_row_rendered(self):
        chart = trend_chart([("t=2", 0.9), ("t=3", 0.8)], target=0.5, target_label="1/2")
        lines = chart.splitlines()
        assert len(lines) == 3
        assert lines[-1].startswith("1/2")
        assert "=" in lines[-1]

    def test_no_target(self):
        chart = trend_chart([("a", 1.0)])
        assert len(chart.splitlines()) == 1

    def test_rows_aligned_with_target(self):
        chart = trend_chart([("t", 0.9)], target=0.5, target_label="longer-label")
        lines = chart.splitlines()
        assert lines[0].index("|") == lines[1].index("|")


class TestBarChartFormatting:
    def test_custom_value_format(self):
        chart = horizontal_bar_chart(["a"], [0.123456], value_format="{:.2f}")
        assert chart.endswith("0.12")

    def test_zero_max_value_renders_empty_bars(self):
        chart = horizontal_bar_chart(["a", "b"], [0, 0], width=6, max_value=0)
        lines = chart.splitlines()
        assert all("#" not in line for line in lines)
        assert all("|" in line for line in lines)

    def test_rows_end_with_the_rendered_value(self):
        chart = horizontal_bar_chart(["one", "two"], [1.5, 2.5])
        lines = chart.splitlines()
        assert lines[0].endswith("1.5")
        assert lines[1].endswith("2.5")


class TestTrendChartEdges:
    def test_zero_target_renders_an_empty_rule(self):
        chart = trend_chart([("a", 0.0)], target=0.0, target_label="zero")
        target_row = chart.splitlines()[-1]
        assert target_row.startswith("zero")
        assert "=" not in target_row

    def test_target_above_every_point_scales_the_bars(self):
        chart = trend_chart([("a", 0.5)], target=1.0, width=10)
        lines = chart.splitlines()
        # The point fills half the width; the target rule fills it all.
        assert lines[0].count("#") == 5
        assert lines[1].count("=") == 10

    def test_deterministic(self):
        points = [("t=2", 0.9), ("t=3", 0.8)]
        assert trend_chart(points, target=0.75) == trend_chart(points, target=0.75)


class TestSparkline:
    def test_length(self):
        assert len(sparkline([1, 2, 3])) == 3

    def test_monotone(self):
        line = sparkline([1, 2, 3, 4])
        assert line == "".join(sorted(line))

    def test_constant(self):
        assert len(set(sparkline([5, 5, 5]))) == 1

    def test_empty(self):
        assert sparkline([]) == ""

    def test_extremes(self):
        line = sparkline([0, 100])
        assert line[0] == "▁" and line[1] == "█"
