"""Tests for the ASCII chart helpers."""

import pytest

from repro.analysis import horizontal_bar_chart, sparkline, trend_chart


class TestBarChart:
    def test_full_bar_for_max(self):
        chart = horizontal_bar_chart(["a", "b"], [10, 5], width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_labels_aligned(self):
        chart = horizontal_bar_chart(["x", "longer"], [1, 2], width=4)
        lines = chart.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_explicit_max(self):
        chart = horizontal_bar_chart(["a"], [5], width=10, max_value=10)
        assert chart.count("#") == 5

    def test_values_capped_at_max(self):
        chart = horizontal_bar_chart(["a"], [20], width=10, max_value=10)
        assert chart.count("#") == 10

    def test_empty(self):
        assert "empty" in horizontal_bar_chart([], [])

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            horizontal_bar_chart(["a"], [1, 2])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            horizontal_bar_chart(["a"], [-1])

    def test_all_zero_values(self):
        chart = horizontal_bar_chart(["a"], [0], width=8)
        assert "#" not in chart


class TestTrendChart:
    def test_target_row_rendered(self):
        chart = trend_chart([("t=2", 0.9), ("t=3", 0.8)], target=0.5, target_label="1/2")
        lines = chart.splitlines()
        assert len(lines) == 3
        assert lines[-1].startswith("1/2")
        assert "=" in lines[-1]

    def test_no_target(self):
        chart = trend_chart([("a", 1.0)])
        assert len(chart.splitlines()) == 1

    def test_rows_aligned_with_target(self):
        chart = trend_chart([("t", 0.9)], target=0.5, target_label="longer-label")
        lines = chart.splitlines()
        assert lines[0].index("|") == lines[1].index("|")


class TestSparkline:
    def test_length(self):
        assert len(sparkline([1, 2, 3])) == 3

    def test_monotone(self):
        line = sparkline([1, 2, 3, 4])
        assert line == "".join(sorted(line))

    def test_constant(self):
        assert len(set(sparkline([5, 5, 5]))) == 1

    def test_empty(self):
        assert sparkline([]) == ""

    def test_extremes(self):
        line = sparkline([0, 100])
        assert line[0] == "▁" and line[1] == "█"
