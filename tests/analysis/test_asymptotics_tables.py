"""Tests for the asymptotic formulas and table rendering."""

import math

import pytest

from repro.analysis import (
    approximation_limit,
    format_cell,
    linear_gap_asymptotic,
    linear_gap_ratio_asymptotic,
    paper_alpha,
    paper_ell,
    quadratic_gap_asymptotic,
    quadratic_gap_ratio_asymptotic,
    render_key_values,
    render_table,
    summary_for_epsilon,
)


class TestPaperParameters:
    def test_ell_plus_alpha_is_log_k(self):
        for k in (2 ** 8, 2 ** 16, 2 ** 32):
            assert paper_ell(k) + paper_alpha(k) == pytest.approx(math.log2(k))

    def test_ell_dominates_alpha_eventually(self):
        k = 2.0 ** 64
        assert paper_ell(k) > 5 * paper_alpha(k)

    def test_domain(self):
        with pytest.raises(ValueError):
            paper_ell(2)


class TestGapFormulas:
    def test_linear_gap_values(self):
        high, low = linear_gap_asymptotic(2 ** 10, 4)
        assert high == pytest.approx(2 * 4 * 10)
        assert low == pytest.approx(6 * 10)

    def test_linear_ratio_tends_to_half(self):
        assert linear_gap_ratio_asymptotic(2) == pytest.approx(1.0)
        assert linear_gap_ratio_asymptotic(100) == pytest.approx(0.51)
        ratios = [linear_gap_ratio_asymptotic(t) for t in range(2, 50)]
        assert ratios == sorted(ratios, reverse=True)

    def test_quadratic_ratio_tends_to_three_quarters(self):
        assert quadratic_gap_ratio_asymptotic(1000) == pytest.approx(
            0.75, abs=0.01
        )

    def test_quadratic_gap_values(self):
        high, low = quadratic_gap_asymptotic(2 ** 10, 4)
        assert high == pytest.approx(4 * 3 * 10)
        assert low == pytest.approx(3 * 6 * 10)

    def test_limit_one_over_t(self):
        assert approximation_limit(4) == 0.25
        with pytest.raises(ValueError):
            approximation_limit(1)

    def test_summary_for_epsilon(self):
        summary = summary_for_epsilon(0.1)
        assert summary["t_linear"] == 20
        assert summary["linear_ratio"] <= 0.5 + 0.1 + 1e-9
        assert summary["linear_limit"] < 0.5
        assert "t_quadratic" in summary
        assert summary["quadratic_ratio"] <= 0.75 + 0.1 + 1e-9

    def test_summary_large_epsilon_skips_quadratic(self):
        assert "t_quadratic" not in summary_for_epsilon(0.3)


class TestTables:
    def test_format_cell(self):
        assert format_cell(None) == "-"
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"
        assert format_cell(3.0) == "3"
        assert format_cell(3.14159, float_digits=3) == "3.14"
        assert format_cell("text") == "text"

    def test_render_table_alignment(self):
        table = render_table(
            ["name", "value"],
            [["a", 1], ["bbbb", 22]],
            title="T",
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[2]
        header_len = len(lines[2])
        assert all(len(line) <= header_len + 6 for line in lines[3:])

    def test_render_table_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])

    def test_render_key_values(self):
        text = render_key_values([["alpha", 1], ["bb", 2.5]])
        assert "alpha" in text
        assert "2.5" in text
