"""Closed-form count formulas, cross-checked against measured graphs."""

import random

import pytest

from repro.analysis import (
    base_graph_edge_count,
    instance_summary,
    linear_cut_count,
    linear_edge_count,
    quadratic_cut_count,
    quadratic_edge_count,
    quadratic_input_edge_count,
    unweighted_node_count,
)
from repro.codes import code_mapping_for_parameters
from repro.commcc import BitString, pairwise_disjoint_inputs
from repro.framework import cut_size
from repro.gadgets import (
    GadgetParameters,
    LinearConstruction,
    QuadraticConstruction,
    UnweightedExpansion,
    build_base_graph,
)

PARAMS = [
    GadgetParameters(ell=2, alpha=1, t=2),
    GadgetParameters(ell=3, alpha=1, t=2),
    GadgetParameters(ell=2, alpha=1, t=3),
    GadgetParameters(ell=4, alpha=1, t=3),
    GadgetParameters(ell=2, alpha=2, t=2),
]


@pytest.mark.parametrize("params", PARAMS, ids=repr)
class TestAgainstMeasuredGraphs:
    def test_base_graph_edges(self, params):
        code = code_mapping_for_parameters(params.ell, params.alpha)
        graph, _ = build_base_graph(params, code)
        assert graph.num_edges == base_graph_edge_count(params)
        assert graph.num_nodes == params.base_graph_nodes

    def test_linear_counts(self, params):
        construction = LinearConstruction(params)
        assert construction.graph.num_edges == linear_edge_count(params)
        assert construction.graph.num_nodes == params.linear_nodes
        assert (
            cut_size(construction.graph, construction.partition())
            == linear_cut_count(params)
        )

    def test_quadratic_counts(self, params):
        construction = QuadraticConstruction(params)
        assert construction.graph.num_edges == quadratic_edge_count(params)
        assert construction.graph.num_nodes == params.quadratic_nodes
        assert (
            cut_size(construction.graph, construction.partition())
            == quadratic_cut_count(params)
        )


class TestInputEdges:
    def test_quadratic_input_edge_count(self):
        params = GadgetParameters(ell=2, alpha=1, t=2)
        construction = QuadraticConstruction(params)
        length = params.k ** 2
        inputs = [
            BitString.from_indices(length, [0, 3]),
            BitString.ones(length),
        ]
        graph = construction.apply_inputs(inputs)
        zero_bits = {i: length - s.popcount() for i, s in enumerate(inputs)}
        expected_new = quadratic_input_edge_count(zero_bits)
        assert graph.num_edges - construction.graph.num_edges == expected_new


class TestUnweightedCount:
    def test_matches_expansion(self):
        params = GadgetParameters(ell=3, alpha=1, t=2)
        construction = LinearConstruction(params)
        inputs = pairwise_disjoint_inputs(params.k, params.t, rng=random.Random(1))
        graph = construction.apply_inputs(inputs)
        expansion = UnweightedExpansion(graph)
        num_heavy = sum(s.popcount() for s in inputs)
        assert expansion.graph.num_nodes == unweighted_node_count(params, num_heavy)


class TestSummary:
    def test_summary_keys_and_consistency(self):
        params = GadgetParameters(ell=4, alpha=1, t=3)
        summary = instance_summary(params)
        assert summary["linear_nodes"] == params.linear_nodes
        assert summary["quadratic_cut"] == 2 * summary["linear_cut"]
        assert summary["linear_high_threshold"] == params.linear_high_threshold()
        assert summary["base_nodes"] * params.t == summary["linear_nodes"]
