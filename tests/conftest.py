"""Shared fixtures: small gadget instances reused across the suite.

Constructions are session-scoped — they are immutable after build, and
tests only read them (families copy the fixed graph before weighting).

Hypothesis runs under the fixed ``repro`` profile (derandomized,
deadline disabled) so CI runs are reproducible byte for byte; export
``HYPOTHESIS_PROFILE=default`` locally to hunt with fresh randomness.
"""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import settings

settings.register_profile("repro", derandomize=True, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "repro"))

from repro.gadgets import (
    GadgetParameters,
    LinearConstruction,
    QuadraticConstruction,
)


@pytest.fixture(scope="session")
def figure_params():
    """The paper's figure parameters: ell=2, alpha=1, k=3, t=2."""
    return GadgetParameters(ell=2, alpha=1, t=2)


@pytest.fixture(scope="session")
def figure_params_t3():
    """Figure 3's parameters: ell=2, alpha=1, k=3, t=3."""
    return GadgetParameters(ell=2, alpha=1, t=3)


@pytest.fixture(scope="session")
def meaningful_params_t3():
    """Smallest t=3 parameters with a non-empty claimed linear gap."""
    return GadgetParameters(ell=4, alpha=1, t=3)


@pytest.fixture(scope="session")
def linear_fig(figure_params):
    """Linear construction at figure parameters (24 nodes)."""
    return LinearConstruction(figure_params)


@pytest.fixture(scope="session")
def linear_fig_t3(figure_params_t3):
    """Linear construction for Figure 3 (36 nodes, 3 players)."""
    return LinearConstruction(figure_params_t3)


@pytest.fixture(scope="session")
def linear_meaningful(meaningful_params_t3):
    """Linear construction with a meaningful gap (90 nodes)."""
    return LinearConstruction(meaningful_params_t3)


@pytest.fixture(scope="session")
def quadratic_fig(figure_params):
    """Quadratic construction at figure parameters (48 nodes)."""
    return QuadraticConstruction(figure_params)


@pytest.fixture()
def rng():
    """A fresh seeded RNG per test."""
    return random.Random(0xC0FFEE)
