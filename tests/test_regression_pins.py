"""Regression pins: fixed-seed experiments reproduce exact numbers.

These values were produced by the initial verified implementation; any
change to construction wiring, weighting, sampling, or solving that
alters semantics will trip one of them.  Update deliberately, never
casually.
"""

import pytest

from repro.core import LinearLowerBoundExperiment, QuadraticLowerBoundExperiment
from repro.framework import cut_size
from repro.gadgets import GadgetParameters, LinearConstruction, QuadraticConstruction


class TestStructuralPins:
    def test_figure_scale_linear_signature(self):
        construction = LinearConstruction(GadgetParameters(ell=2, alpha=1, t=2))
        # per copy: C(3,2) + 3*C(3,2) + 3*6 = 3 + 9 + 18 = 30; 2*30 + 18 cut.
        assert construction.graph.structural_signature() == (24, 78, 24)
        assert cut_size(construction.graph, construction.partition()) == 18

    def test_figure_scale_quadratic_signature(self):
        construction = QuadraticConstruction(GadgetParameters(ell=2, alpha=1, t=2))
        # 48 nodes; 12 heavy nodes at weight 2 -> total weight 36 + 12 = 60.
        assert construction.graph.structural_signature() == (48, 156, 60)

    def test_meaningful_t3_signature(self):
        construction = LinearConstruction(GadgetParameters(ell=4, alpha=1, t=3))
        assert construction.graph.structural_signature() == (90, 780, 90)
        assert cut_size(construction.graph, construction.partition()) == 300


class TestExperimentPins:
    def test_linear_t3_seed0(self):
        params = GadgetParameters(ell=4, alpha=1, t=3)
        report = LinearLowerBoundExperiment(params, seed=0).run(num_samples=2)
        assert report.gap.min_intersecting == 27
        assert report.gap.max_disjoint == 21
        assert report.gap.measured_ratio == pytest.approx(21 / 27)

    def test_warmup_seed42(self):
        params = GadgetParameters(ell=2, alpha=1, t=2)
        report = LinearLowerBoundExperiment(params, warmup=True, seed=42).run(5)
        assert report.gap.min_intersecting == 10
        assert report.gap.max_disjoint == 9

    def test_quadratic_t2_seed0(self):
        params = GadgetParameters(ell=2, alpha=1, t=2)
        report = QuadraticLowerBoundExperiment(params, seed=0).run(num_samples=2)
        assert report.gap.min_intersecting == 20
        assert report.gap.max_disjoint == 18

    def test_round_bound_value_t2(self):
        params = GadgetParameters(ell=3, alpha=1, t=2)
        report = LinearLowerBoundExperiment(params, seed=0).run(num_samples=1)
        # cc = 4/2 = 2; cut = 48; log2(40) -> value = 2 / (48 * log2(40)).
        import math

        assert report.round_bound.value == pytest.approx(
            2 / (48 * math.log2(40))
        )
