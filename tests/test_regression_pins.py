"""Regression pins: fixed-seed experiments reproduce exact numbers.

These values were produced by the initial verified implementation; any
change to construction wiring, weighting, sampling, or solving that
alters semantics will trip one of them.  Update deliberately, never
casually.
"""

import random

import pytest

from repro.core import LinearLowerBoundExperiment, QuadraticLowerBoundExperiment
from repro.framework import cut_size
from repro.gadgets import GadgetParameters, LinearConstruction, QuadraticConstruction
from repro.graphs import random_graph
from repro.maxis import BranchAndBoundStats, max_weight_independent_set


class TestStructuralPins:
    def test_figure_scale_linear_signature(self):
        construction = LinearConstruction(GadgetParameters(ell=2, alpha=1, t=2))
        # per copy: C(3,2) + 3*C(3,2) + 3*6 = 3 + 9 + 18 = 30; 2*30 + 18 cut.
        assert construction.graph.structural_signature() == (24, 78, 24)
        assert cut_size(construction.graph, construction.partition()) == 18

    def test_figure_scale_quadratic_signature(self):
        construction = QuadraticConstruction(GadgetParameters(ell=2, alpha=1, t=2))
        # 48 nodes; 12 heavy nodes at weight 2 -> total weight 36 + 12 = 60.
        assert construction.graph.structural_signature() == (48, 156, 60)

    def test_meaningful_t3_signature(self):
        construction = LinearConstruction(GadgetParameters(ell=4, alpha=1, t=3))
        assert construction.graph.structural_signature() == (90, 780, 90)
        assert cut_size(construction.graph, construction.partition()) == 300


class TestSolverPins:
    """The kernelization must not change *which* witness is reported.

    On gadget instances the kernel is the identity (3-regular-or-denser,
    twin-free interiors), so the kernel-on path must hand the exact same
    index form to the exact same search — byte-identical witnesses, and
    never more expanded nodes than the raw path.
    """

    @pytest.mark.parametrize("ell,t", [(3, 2), (4, 3)])
    def test_gadget_witness_identical_kernel_on_off(self, ell, t):
        graph = LinearConstruction(GadgetParameters(ell=ell, alpha=1, t=t)).graph
        on = max_weight_independent_set(graph, kernel=True)
        off = max_weight_independent_set(graph, kernel=False)
        assert on.weight == off.weight
        assert sorted(on.nodes) == sorted(off.nodes)

    @pytest.mark.parametrize(
        "ell,t,optimum,expanded",
        [(3, 2, 10, 10), (4, 3, 18, 18)],
    )
    def test_gadget_kernel_never_expands_more(self, ell, t, optimum, expanded):
        graph = LinearConstruction(GadgetParameters(ell=ell, alpha=1, t=t)).graph
        stats_on, stats_off = BranchAndBoundStats(), BranchAndBoundStats()
        on = max_weight_independent_set(graph, stats=stats_on, kernel=True)
        off = max_weight_independent_set(graph, stats=stats_off, kernel=False)
        assert on.weight == off.weight == optimum
        assert stats_on.nodes_expanded <= stats_off.nodes_expanded
        assert stats_off.nodes_expanded == expanded

    def test_random_seed41_witness_pinned(self):
        graph = random_graph(20, 0.3, rng=random.Random(41), weight_range=(1, 9))
        on = max_weight_independent_set(graph, kernel=True)
        off = max_weight_independent_set(graph, kernel=False)
        assert on.weight == off.weight == 47
        assert sorted(on.nodes) == sorted(off.nodes)
        assert sorted(on.nodes) == [1, 3, 5, 6, 8, 12, 15, 16]


class TestExperimentPins:
    def test_linear_t3_seed0(self):
        params = GadgetParameters(ell=4, alpha=1, t=3)
        report = LinearLowerBoundExperiment(params, seed=0).run(num_samples=2)
        assert report.gap.min_intersecting == 27
        assert report.gap.max_disjoint == 21
        assert report.gap.measured_ratio == pytest.approx(21 / 27)

    def test_warmup_seed42(self):
        params = GadgetParameters(ell=2, alpha=1, t=2)
        report = LinearLowerBoundExperiment(params, warmup=True, seed=42).run(5)
        assert report.gap.min_intersecting == 10
        assert report.gap.max_disjoint == 9

    def test_quadratic_t2_seed0(self):
        params = GadgetParameters(ell=2, alpha=1, t=2)
        report = QuadraticLowerBoundExperiment(params, seed=0).run(num_samples=2)
        assert report.gap.min_intersecting == 20
        assert report.gap.max_disjoint == 18

    def test_round_bound_value_t2(self):
        params = GadgetParameters(ell=3, alpha=1, t=2)
        report = LinearLowerBoundExperiment(params, seed=0).run(num_samples=1)
        # cc = 4/2 = 2; cut = 48; log2(40) -> value = 2 / (48 * log2(40)).
        import math

        assert report.round_bound.value == pytest.approx(
            2 / (48 * math.log2(40))
        )
