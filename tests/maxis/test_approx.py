"""Tests for the greedy approximations and partition local optima."""

import random

import pytest

from repro.graphs import WeightedGraph, clique, random_graph, star_graph
from repro.maxis import (
    best_greedy,
    brute_force_max_weight_independent_set,
    greedy_by_degree,
    greedy_by_weight,
    greedy_by_weight_degree_ratio,
    local_optima_over_partition,
    max_weight_independent_set,
    random_maximal_independent_set,
)

GREEDIES = [greedy_by_weight, greedy_by_degree, greedy_by_weight_degree_ratio]


class TestGreedyVariants:
    @pytest.mark.parametrize("greedy", GREEDIES)
    def test_result_is_maximal_independent(self, greedy):
        graph = random_graph(20, 0.3, rng=random.Random(3), weight_range=(1, 5))
        result = greedy(graph)
        assert graph.is_independent_set(result.nodes)
        covered = set(result.nodes)
        for node in result.nodes:
            covered |= graph.neighbors(node)
        assert covered == graph.node_set()

    def test_greedy_by_weight_prefers_heavy(self):
        graph = WeightedGraph(nodes={"heavy": 10, "l1": 1, "l2": 1})
        graph.add_edge("heavy", "l1")
        graph.add_edge("heavy", "l2")
        assert "heavy" in greedy_by_weight(graph).nodes

    def test_greedy_by_degree_beats_weight_on_star(self):
        # Star with heavy center: degree greedy takes the leaves.
        graph = star_graph("hub", [f"leaf{i}" for i in range(5)])
        graph.set_weight("hub", 3)
        degree_result = greedy_by_degree(graph)
        assert degree_result.weight == 5

    def test_ratio_rule_guarantee(self):
        # Weighted Turán: result >= sum w(v)/(deg(v)+1).
        graph = random_graph(18, 0.4, rng=random.Random(5), weight_range=(1, 9))
        bound = sum(
            graph.weight(v) / (graph.degree(v) + 1) for v in graph.nodes()
        )
        assert greedy_by_weight_degree_ratio(graph).weight >= bound - 1e-9

    def test_best_greedy_dominates_each(self):
        graph = random_graph(15, 0.35, rng=random.Random(7), weight_range=(1, 6))
        best = best_greedy(graph).weight
        for greedy in GREEDIES:
            assert best >= greedy(graph).weight

    @pytest.mark.parametrize("seed", range(5))
    def test_greedy_never_beats_exact(self, seed):
        graph = random_graph(14, 0.4, rng=random.Random(seed), weight_range=(1, 7))
        optimum = max_weight_independent_set(graph).weight
        assert best_greedy(graph).weight <= optimum


class TestRandomMaximal:
    def test_is_maximal_independent(self):
        graph = random_graph(25, 0.3, rng=random.Random(11))
        result = random_maximal_independent_set(graph, rng=random.Random(2))
        assert graph.is_independent_set(result.nodes)
        covered = set(result.nodes)
        for node in result.nodes:
            covered |= graph.neighbors(node)
        assert covered == graph.node_set()

    def test_varies_with_rng(self):
        graph = random_graph(20, 0.3, rng=random.Random(13))
        sets = {
            random_maximal_independent_set(graph, rng=random.Random(s)).nodes
            for s in range(10)
        }
        assert len(sets) > 1


class TestLocalOptimaOverPartition:
    def test_two_part_guarantee(self):
        graph = random_graph(16, 0.4, rng=random.Random(17), weight_range=(1, 5))
        nodes = graph.node_list()
        parts = [nodes[:8], nodes[8:]]
        best, index = local_optima_over_partition(
            graph, parts, max_weight_independent_set
        )
        optimum = max_weight_independent_set(graph).weight
        assert best.weight >= optimum / 2
        assert index in (0, 1)

    def test_t_part_guarantee(self):
        graph = random_graph(18, 0.5, rng=random.Random(19), weight_range=(1, 5))
        nodes = graph.node_list()
        parts = [nodes[i::3] for i in range(3)]
        best, _ = local_optima_over_partition(
            graph, parts, max_weight_independent_set
        )
        optimum = max_weight_independent_set(graph).weight
        assert best.weight >= optimum / 3

    def test_result_valid_in_whole_graph(self):
        graph = random_graph(12, 0.5, rng=random.Random(23))
        nodes = graph.node_list()
        best, _ = local_optima_over_partition(
            graph, [nodes[:6], nodes[6:]], max_weight_independent_set
        )
        assert graph.is_independent_set(best.nodes)

    def test_empty_parts_raise(self):
        graph = WeightedGraph(nodes=["a"])
        with pytest.raises(ValueError):
            local_optima_over_partition(graph, [], max_weight_independent_set)
