"""Differential tests: every MaxIS solver agrees on random graphs.

Hypothesis drives G(n, p) instances with n <= 14 — small enough for the
exponential brute-force enumerator, large enough to exercise the branch
and bound pruning paths.  The oracles cross-check each other:

* ``brute_force_max_weight_independent_set`` enumerates all subsets and
  is the ground truth;
* ``max_weight_independent_set`` (branch and bound) must match it;
* ``max_weight_clique`` on the complement graph must match it (an
  independent set is a clique in the complement);
* the complement identity ``total == maxIS + minVC`` must hold;
* no approximation may ever beat the optimum.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import random_graph
from repro.maxis import (
    best_greedy,
    brute_force_max_weight_independent_set,
    complement_identity_check,
    is_vertex_cover,
    matching_vertex_cover,
    max_independent_set_weight,
    max_weight_clique,
    max_weight_independent_set,
    min_weight_vertex_cover,
    random_maximal_independent_set,
)


@st.composite
def small_random_graph(draw):
    """A weighted G(n, p) graph small enough to brute-force."""
    num_nodes = draw(st.integers(min_value=0, max_value=14))
    # Tenths keep the strategy space small; 0.0 and 1.0 hit the
    # edgeless / complete extremes.
    edge_probability = draw(st.integers(min_value=0, max_value=10)) / 10
    seed = draw(st.integers(min_value=0, max_value=2**20))
    max_weight = draw(st.sampled_from([1, 3, 9]))
    return random_graph(
        num_nodes,
        edge_probability,
        rng=random.Random(seed),
        weight_range=(1, max_weight),
    )


class TestExactSolversAgree:
    @settings(max_examples=60)
    @given(small_random_graph())
    def test_branch_and_bound_matches_brute_force(self, graph):
        exact = max_weight_independent_set(graph)
        brute = brute_force_max_weight_independent_set(graph)
        assert exact.weight == brute.weight
        assert graph.is_independent_set(exact.nodes)

    @settings(max_examples=40)
    @given(small_random_graph())
    def test_clique_on_complement_matches(self, graph):
        optimum = max_independent_set_weight(graph)
        clique = max_weight_clique(graph.complement())
        assert clique.weight == optimum

    @settings(max_examples=40)
    @given(small_random_graph())
    def test_complement_identity(self, graph):
        total, max_is, min_vc = complement_identity_check(graph)
        assert total == max_is + min_vc
        assert total == graph.total_weight()
        cover = min_weight_vertex_cover(graph)
        assert cover.weight == min_vc
        assert is_vertex_cover(graph, cover.nodes)


class TestApproximationsNeverBeatOptimum:
    @settings(max_examples=40)
    @given(small_random_graph())
    def test_greedy_bounded_by_optimum(self, graph):
        optimum = max_independent_set_weight(graph)
        greedy = best_greedy(graph)
        assert greedy.weight <= optimum
        assert graph.is_independent_set(greedy.nodes)

    @settings(max_examples=40)
    @given(small_random_graph(), st.integers(min_value=0, max_value=2**16))
    def test_random_maximal_bounded_by_optimum(self, graph, seed):
        optimum = max_independent_set_weight(graph)
        result = random_maximal_independent_set(graph, rng=random.Random(seed))
        assert result.weight <= optimum
        assert graph.is_independent_set(result.nodes)

    @settings(max_examples=30)
    @given(small_random_graph())
    def test_matching_cover_never_below_minimum(self, graph):
        minimum = min_weight_vertex_cover(graph).weight
        approx = matching_vertex_cover(graph)
        assert approx.weight >= minimum
        assert is_vertex_cover(graph, approx.nodes)
