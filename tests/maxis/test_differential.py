"""Differential tests: every MaxIS solver agrees on random graphs.

Hypothesis drives G(n, p) instances with n <= 14 — small enough for the
exponential brute-force enumerator, large enough to exercise the branch
and bound pruning paths.  The oracles cross-check each other:

* ``brute_force_max_weight_independent_set`` enumerates all subsets and
  is the ground truth;
* ``max_weight_independent_set`` (branch and bound) must match it, with
  the kernelization front-end on AND off — the four-way matrix
  ``exact(kernel) == exact(no kernel) == brute force == total − minVC``
  runs on every instance;
* ``max_weight_clique`` on the complement graph must match it (an
  independent set is a clique in the complement);
* no approximation may ever beat the optimum.

The adversarial families below aim at the kernel's soft spots: unions
of cliques (the twin rule must collapse them entirely), complete
bipartite graphs minus a perfect matching (dense, domination-heavy),
paths and cycles (pure fold-rule cascades), and all-equal-weight ties
(every tie-break branch).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import WeightedGraph, random_graph, union_of_cliques
from repro.maxis import (
    best_greedy,
    brute_force_max_weight_independent_set,
    complement_identity_check,
    is_vertex_cover,
    matching_vertex_cover,
    max_independent_set_weight,
    max_weight_clique,
    max_weight_independent_set,
    min_weight_vertex_cover,
    random_maximal_independent_set,
)


def assert_four_way_agreement(graph):
    """exact(kernel) == exact(no kernel) == brute force == total − minVC."""
    kernel_on = max_weight_independent_set(graph, kernel=True)
    kernel_off = max_weight_independent_set(graph, kernel=False)
    brute = brute_force_max_weight_independent_set(graph)
    min_vc = min_weight_vertex_cover(graph).weight
    assert kernel_on.weight == kernel_off.weight == brute.weight
    assert brute.weight == graph.total_weight() - min_vc
    assert graph.is_independent_set(kernel_on.nodes)
    assert graph.is_independent_set(kernel_off.nodes)


@st.composite
def small_random_graph(draw):
    """A weighted G(n, p) graph small enough to brute-force."""
    num_nodes = draw(st.integers(min_value=0, max_value=14))
    # Tenths keep the strategy space small; 0.0 and 1.0 hit the
    # edgeless / complete extremes.
    edge_probability = draw(st.integers(min_value=0, max_value=10)) / 10
    seed = draw(st.integers(min_value=0, max_value=2**20))
    max_weight = draw(st.sampled_from([1, 3, 9]))
    return random_graph(
        num_nodes,
        edge_probability,
        rng=random.Random(seed),
        weight_range=(1, max_weight),
    )


class TestExactSolversAgree:
    @settings(max_examples=60)
    @given(small_random_graph())
    def test_four_way_matrix_on_random_graphs(self, graph):
        assert_four_way_agreement(graph)

    @settings(max_examples=40)
    @given(small_random_graph())
    def test_clique_on_complement_matches(self, graph):
        optimum = max_independent_set_weight(graph)
        clique = max_weight_clique(graph.complement())
        assert clique.weight == optimum

    @settings(max_examples=40)
    @given(small_random_graph())
    def test_complement_identity(self, graph):
        total, max_is, min_vc = complement_identity_check(graph)
        assert total == max_is + min_vc
        assert total == graph.total_weight()
        cover = min_weight_vertex_cover(graph)
        assert cover.weight == min_vc
        assert is_vertex_cover(graph, cover.nodes)


class TestAdversarialFamilies:
    """The four-way matrix on families aimed at specific kernel rules."""

    @pytest.mark.parametrize("num_cliques,size", [(1, 1), (2, 3), (3, 4), (4, 2)])
    def test_union_of_cliques(self, num_cliques, size):
        groups = [
            [(h, r) for r in range(size)] for h in range(num_cliques)
        ]
        graph = union_of_cliques(groups)
        # Vary weights within each clique so twin tie-breaks matter.
        for h in range(num_cliques):
            for r in range(size):
                graph.set_weight((h, r), 1 + (h + r) % 3)
        assert_four_way_agreement(graph)

    @pytest.mark.parametrize("side", [2, 3, 4])
    def test_complete_bipartite_minus_matching(self, side):
        graph = WeightedGraph()
        for i in range(side):
            graph.add_node(("L", i), weight=1 + i)
            graph.add_node(("R", i), weight=side - i)
        for i in range(side):
            for j in range(side):
                if i != j:  # remove the perfect matching (L_i, R_i)
                    graph.add_edge(("L", i), ("R", j))
        assert_four_way_agreement(graph)

    @pytest.mark.parametrize("length", [1, 2, 3, 5, 8, 12])
    def test_paths(self, length):
        graph = WeightedGraph()
        for i in range(length):
            graph.add_node(i, weight=1 + (i * 3) % 5)
        for i in range(length - 1):
            graph.add_edge(i, i + 1)
        assert_four_way_agreement(graph)

    @pytest.mark.parametrize("length", [3, 4, 5, 6, 9, 13])
    def test_cycles(self, length):
        graph = WeightedGraph()
        for i in range(length):
            graph.add_node(i, weight=1 + (i * 7) % 4)
        for i in range(length):
            graph.add_edge(i, (i + 1) % length)
        assert_four_way_agreement(graph)

    @pytest.mark.parametrize("seed", range(8))
    def test_all_equal_weight_ties(self, seed):
        # Uniform weights force every tie-break path: include-vs-fold in
        # the degree-1 rule, twin keep-heaviest, domination equality.
        graph = random_graph(
            12, 0.3, rng=random.Random(seed), weight_range=(1, 1)
        )
        assert_four_way_agreement(graph)


class TestApproximationsNeverBeatOptimum:
    @settings(max_examples=40)
    @given(small_random_graph())
    def test_greedy_bounded_by_optimum(self, graph):
        optimum = max_independent_set_weight(graph)
        greedy = best_greedy(graph)
        assert greedy.weight <= optimum
        assert graph.is_independent_set(greedy.nodes)

    @settings(max_examples=40)
    @given(small_random_graph(), st.integers(min_value=0, max_value=2**16))
    def test_random_maximal_bounded_by_optimum(self, graph, seed):
        optimum = max_independent_set_weight(graph)
        result = random_maximal_independent_set(graph, rng=random.Random(seed))
        assert result.weight <= optimum
        assert graph.is_independent_set(result.nodes)

    @settings(max_examples=30)
    @given(small_random_graph())
    def test_matching_cover_never_below_minimum(self, graph):
        minimum = min_weight_vertex_cover(graph).weight
        approx = matching_vertex_cover(graph)
        assert approx.weight >= minimum
        assert is_vertex_cover(graph, approx.nodes)
