"""Tests for the result type and approximation-ratio helper."""

import pytest

from repro.graphs import WeightedGraph
from repro.maxis import IndependentSetResult, approximation_ratio


class TestIndependentSetResult:
    def test_validates_independence(self):
        graph = WeightedGraph(edges=[("a", "b")])
        with pytest.raises(ValueError):
            IndependentSetResult(graph, ["a", "b"])

    def test_weight_computed(self):
        graph = WeightedGraph(nodes={"a": 3, "b": 4})
        result = IndependentSetResult(graph, ["a", "b"])
        assert result.weight == 7
        assert len(result) == 2

    def test_empty_set(self):
        result = IndependentSetResult(WeightedGraph(nodes=["a"]), [])
        assert result.weight == 0


class TestApproximationRatio:
    def test_exact(self):
        assert approximation_ratio(10, 10) == 1.0

    def test_half(self):
        assert approximation_ratio(5, 10) == 0.5

    def test_zero_optimum(self):
        assert approximation_ratio(0, 0) == 1.0

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            approximation_ratio(-1, 5)
        with pytest.raises(ValueError):
            approximation_ratio(1, -5)
