"""Tests for the brute-force oracle."""

import pytest

from repro.graphs import WeightedGraph, clique, cycle_graph, path_graph
from repro.maxis import (
    brute_force_max_weight_independent_set,
    count_independent_sets,
)


class TestBruteForce:
    def test_triangle(self):
        graph = clique(["a", "b", "c"])
        graph.set_weight("b", 3)
        result = brute_force_max_weight_independent_set(graph)
        assert result.nodes == frozenset({"b"})

    def test_empty(self):
        result = brute_force_max_weight_independent_set(WeightedGraph())
        assert result.weight == 0

    def test_size_limit(self):
        graph = WeightedGraph(nodes=range(30))
        with pytest.raises(ValueError):
            brute_force_max_weight_independent_set(graph)

    def test_path4(self):
        graph = path_graph(["a", "b", "c", "d"])
        assert brute_force_max_weight_independent_set(graph).weight == 2


class TestCounting:
    def test_empty_graph_counts_empty_set(self):
        assert count_independent_sets(WeightedGraph()) == 1

    def test_single_node(self):
        assert count_independent_sets(WeightedGraph(nodes=["a"])) == 2

    def test_single_edge(self):
        # {}, {a}, {b}
        assert count_independent_sets(WeightedGraph(edges=[("a", "b")])) == 3

    def test_triangle(self):
        # {}, three singletons.
        assert count_independent_sets(clique(["a", "b", "c"])) == 4

    def test_cycle4(self):
        # {}, 4 singletons, 2 diagonal pairs.
        assert count_independent_sets(cycle_graph(list(range(4)))) == 7

    def test_independent_nodes(self):
        assert count_independent_sets(WeightedGraph(nodes=range(4))) == 16

    def test_size_limit(self):
        with pytest.raises(ValueError):
            count_independent_sets(WeightedGraph(nodes=range(40)))
