"""Property battery for the MaxIS kernelization (``repro.maxis.kernel``).

Hypothesis drives random weighted graphs small enough to brute-force
(n <= 14, weights with zeros and ties) and checks the three invariants
the kernel's correctness argument rests on:

* **kernel-solve-lift optimality** — solving the reduced instance and
  lifting the witness through the fold log yields exactly the
  brute-force optimum of the original graph, and the lifted set is
  independent *in the original graph*;
* **round-trip exactness** — ``revert()`` replays the primitive journal
  backwards and reconstructs a graph equal (nodes, weights, edges) to
  the input;
* **weight conservation** — the kernel never invents weight: every
  reduced instance's optimum plus the lifted contribution equals the
  original optimum (checked through the lift rather than an offset,
  because fold rules shift weight between vertices).

Tests run under the shared derandomized ``repro`` profile (see
``tests/conftest.py``); the central equivalence property runs at 200
examples so CI covers the rule interactions, not just the happy path.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import WeightedGraph
from repro.maxis import (
    FoldedVertex,
    brute_force_max_weight_independent_set,
    kernelize,
    max_weight_independent_set,
)


@st.composite
def weighted_graph(draw):
    """A small weighted graph biased toward kernel-rule triggers.

    Low edge probabilities produce degree-0/1/2 vertices (the fold
    rules); the weight pool includes 0 and repeats small values so
    include-vs-fold tie-breaks and the domination rule all fire.
    """
    num_nodes = draw(st.integers(min_value=0, max_value=14))
    edge_probability = draw(st.sampled_from([0.0, 0.1, 0.2, 0.35, 0.6, 1.0]))
    seed = draw(st.integers(min_value=0, max_value=2**20))
    rng = random.Random(seed)
    graph = WeightedGraph()
    weight_pool = [0, 1, 1, 2, 3, 3, 5, 9]
    for node in range(num_nodes):
        graph.add_node(node, weight=rng.choice(weight_pool))
    for u in range(num_nodes):
        for v in range(u + 1, num_nodes):
            if rng.random() < edge_probability:
                graph.add_edge(u, v)
    return graph


class TestKernelSolveLift:
    @settings(max_examples=200)
    @given(weighted_graph())
    def test_lifted_witness_is_optimal_and_independent(self, graph):
        brute = brute_force_max_weight_independent_set(graph)
        result = max_weight_independent_set(graph, kernel=True)
        # IndependentSetResult re-validates independence and recomputes
        # the weight against the original graph on construction, so a
        # non-independent or mis-weighted lift cannot sneak through.
        assert result.weight == brute.weight
        assert graph.is_independent_set(result.nodes)
        assert all(not isinstance(node, FoldedVertex) for node in result.nodes)

    @settings(max_examples=100)
    @given(weighted_graph())
    def test_kernel_on_off_same_optimum(self, graph):
        on = max_weight_independent_set(graph, kernel=True)
        off = max_weight_independent_set(graph, kernel=False)
        assert on.weight == off.weight

    @settings(max_examples=100)
    @given(weighted_graph())
    def test_direct_lift_of_reduced_optimum(self, graph):
        """Lift through the fold state explicitly, not via the solver."""
        kern = kernelize(graph)
        reduced = kern.reduced_graph()
        reduced_best = brute_force_max_weight_independent_set(reduced)
        lifted = kern.lift(reduced_best.nodes)
        assert graph.is_independent_set(lifted)
        assert graph.total_weight(lifted) == (
            brute_force_max_weight_independent_set(graph).weight
        )


class TestReduceRevertRoundTrip:
    @settings(max_examples=200)
    @given(weighted_graph())
    def test_revert_reconstructs_graph_exactly(self, graph):
        kern = kernelize(graph)
        assert kern.revert() == graph

    @settings(max_examples=60)
    @given(weighted_graph())
    def test_kernelize_leaves_input_untouched(self, graph):
        snapshot_nodes = dict(graph.weights())
        snapshot_edges = sorted(map(sorted, graph.edges()))
        kernelize(graph)
        assert dict(graph.weights()) == snapshot_nodes
        assert sorted(map(sorted, graph.edges())) == snapshot_edges


class TestKernelShape:
    @settings(max_examples=100)
    @given(weighted_graph())
    def test_reduced_form_is_consistent(self, graph):
        kern = kernelize(graph)
        labels, weights, masks = kern.reduced_index_form()
        assert len(labels) == len(weights) == len(masks)
        assert len(labels) == kern.num_reduced_nodes
        assert kern.stats.removed_nodes >= 0
        # Branching order: non-increasing weight.
        assert all(
            weights[i] >= weights[i + 1] for i in range(len(weights) - 1)
        )
        # Masks are symmetric and irreflexive over the reduced indices.
        for i, mask in enumerate(masks):
            assert not (mask >> i) & 1
            remaining = mask
            while remaining:
                low = remaining & -remaining
                j = low.bit_length() - 1
                remaining ^= low
                assert (masks[j] >> i) & 1

    @settings(max_examples=60)
    @given(weighted_graph())
    def test_low_degree_vertices_always_reduced(self, graph):
        """The fixed point has no vertex of residual degree 0 or 1.

        (Degree-2 vertices can survive: the fold declines triangles and
        the ``w(v) < max(w(u), w(x))`` weight case by design.)
        """
        reduced = kernelize(graph).reduced_graph()
        degrees = [reduced.degree(node) for node in reduced.nodes()]
        assert all(degree >= 2 for degree in degrees)
