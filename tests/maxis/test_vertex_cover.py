"""Tests for minimum vertex cover (the MaxIS complement)."""

import random

import pytest

from repro.graphs import WeightedGraph, clique, cycle_graph, path_graph, random_graph
from repro.maxis import (
    VertexCoverResult,
    complement_identity_check,
    is_vertex_cover,
    matching_vertex_cover,
    min_weight_vertex_cover,
)


class TestIsVertexCover:
    def test_full_node_set_covers(self):
        graph = clique(list(range(4)))
        assert is_vertex_cover(graph, graph.nodes())

    def test_empty_cover_only_for_edgeless(self):
        assert is_vertex_cover(WeightedGraph(nodes=["a"]), [])
        assert not is_vertex_cover(WeightedGraph(edges=[("a", "b")]), [])

    def test_single_endpoint_covers_edge(self):
        graph = WeightedGraph(edges=[("a", "b")])
        assert is_vertex_cover(graph, ["a"])


class TestExactCover:
    def test_result_validated(self):
        graph = WeightedGraph(edges=[("a", "b")])
        with pytest.raises(ValueError):
            VertexCoverResult(graph, [])

    def test_star_covers_with_hub(self):
        from repro.graphs import star_graph

        graph = star_graph("hub", [f"l{i}" for i in range(5)])
        cover = min_weight_vertex_cover(graph)
        assert cover.nodes == frozenset({"hub"})

    def test_cycle5_needs_three(self):
        graph = cycle_graph(list(range(5)))
        assert len(min_weight_vertex_cover(graph)) == 3

    def test_clique_needs_all_but_one(self):
        graph = clique(list(range(6)))
        assert len(min_weight_vertex_cover(graph)) == 5

    def test_weighted_choice(self):
        graph = WeightedGraph(nodes={"a": 10, "b": 1})
        graph.add_edge("a", "b")
        cover = min_weight_vertex_cover(graph)
        assert cover.nodes == frozenset({"b"})

    @pytest.mark.parametrize("seed", range(6))
    def test_complement_identity(self, seed):
        graph = random_graph(
            14, 0.4, rng=random.Random(seed), weight_range=(1, 7)
        )
        total, independent, cover = complement_identity_check(graph)
        assert total == independent + cover


class TestMatchingApproximation:
    @pytest.mark.parametrize("seed", range(6))
    def test_within_factor_two_of_optimum_size(self, seed):
        graph = random_graph(16, 0.3, rng=random.Random(seed + 50))
        approx = matching_vertex_cover(graph)
        exact = min_weight_vertex_cover(graph)
        assert len(approx) <= 2 * len(exact)

    def test_is_a_cover(self):
        graph = random_graph(20, 0.3, rng=random.Random(99))
        approx = matching_vertex_cover(graph)
        assert is_vertex_cover(graph, approx.nodes)

    def test_path_approximation(self):
        graph = path_graph(list(range(4)))
        approx = matching_vertex_cover(graph)
        assert len(approx) in (2, 4)  # one or two matched edges

    def test_edgeless_empty_cover(self):
        graph = WeightedGraph(nodes=list(range(3)))
        assert len(matching_vertex_cover(graph)) == 0
