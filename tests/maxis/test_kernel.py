"""Unit tests for each kernelization rule and the fold-state API."""

import pickle

import pytest

from repro.graphs import WeightedGraph, clique, union_of_cliques
from repro.maxis import (
    FoldedVertex,
    Kernelization,
    brute_force_max_weight_independent_set,
    kernel_default_enabled,
    kernelize,
    max_weight_independent_set,
    set_kernel_default,
    using_kernel,
)


def _path(weights):
    graph = WeightedGraph()
    for i, w in enumerate(weights):
        graph.add_node(i, weight=w)
    for i in range(len(weights) - 1):
        graph.add_edge(i, i + 1)
    return graph


def _cube():
    """The 3-cube Q3: 3-regular, twin-free, subset-free — irreducible."""
    graph = WeightedGraph(nodes={i: 1 for i in range(8)})
    for u in range(8):
        for bit in (1, 2, 4):
            if u < u ^ bit:
                graph.add_edge(u, u ^ bit)
    return graph


class TestDegreeRules:
    def test_isolated_nodes_included(self):
        graph = WeightedGraph(nodes={"a": 3, "b": 0, "c": 7})
        kern = kernelize(graph)
        assert kern.num_reduced_nodes == 0
        assert kern.stats.degree0_includes == 3
        assert sorted(kern.lift([])) == ["a", "b", "c"]

    def test_degree_one_include_when_heavier(self):
        graph = WeightedGraph(nodes={"leaf": 5, "hub": 2})
        graph.add_edge("leaf", "hub")
        kern = kernelize(graph)
        assert kern.num_reduced_nodes == 0
        assert kern.stats.degree1_includes >= 1
        assert kern.lift([]) == ["leaf"]

    def test_degree_one_fold_when_lighter(self):
        # leaf(1) - hub(5) - other(1): fold moves the leaf's weight into
        # the hub; kernel solves to {hub}, lift keeps {hub} (leaf's
        # neighbor taken => leaf stays out).
        graph = _path([1, 5, 1])
        result = max_weight_independent_set(graph, kernel=True)
        assert result.weight == 5
        assert result.nodes == frozenset({1})

    def test_degree_one_fold_lift_adds_leaf_back(self):
        # leaf(1) - hub(2): folding gives hub weight 1; whichever way the
        # kernel resolves, the lifted optimum is weight 2.
        graph = WeightedGraph(nodes={"leaf": 1, "hub": 2})
        graph.add_edge("leaf", "hub")
        result = max_weight_independent_set(graph, kernel=True)
        assert result.weight == 2
        assert result.nodes == frozenset({"hub"})

    def test_degree_two_include_dominating_center(self):
        # v(9) bridges two triangles via u and x (non-adjacent, degree
        # 3, so the degree-1 rules can't consume them first); w(v) >=
        # w(u) + w(x) takes v outright.
        graph = WeightedGraph(
            nodes={"v": 9, "u": 1, "x": 1, "p": 1, "q": 1, "r": 1, "s": 1}
        )
        for edge in [
            ("v", "u"), ("v", "x"),
            ("u", "p"), ("u", "q"), ("p", "q"),
            ("x", "r"), ("x", "s"), ("r", "s"),
        ]:
            graph.add_edge(*edge)
        kern = kernelize(graph)
        assert kern.stats.degree2_includes >= 1
        assert max_weight_independent_set(graph, kernel=True).weight == 11

    def test_degree_two_fold_creates_vertex(self):
        # A 5-cycle of equal weights has every vertex at degree 2 and no
        # domination: only the degree-2 fold can reduce it.
        graph = WeightedGraph(nodes={i: 2 for i in range(5)})
        for i in range(5):
            graph.add_edge(i, (i + 1) % 5)
        kern = kernelize(graph)
        assert kern.stats.degree2_folds >= 1
        assert kern.stats.created_vertices >= 1
        result = max_weight_independent_set(graph, kernel=True)
        assert result.weight == 4
        assert graph.is_independent_set(result.nodes)

    def test_triangle_left_to_domination(self):
        # An isolated triangle: the degree-2 rule declines (neighbors
        # adjacent), but twins collapse it to the heaviest vertex.
        graph = clique(["a", "b", "c"])
        graph.set_weight("b", 4)
        kern = kernelize(graph)
        assert kern.num_reduced_nodes == 0
        assert max_weight_independent_set(graph, kernel=True).nodes == (
            frozenset({"b"})
        )


class TestDomination:
    def test_union_of_cliques_collapses_completely(self):
        groups = [[(h, r) for r in range(4)] for h in range(5)]
        graph = union_of_cliques(groups)
        kern = kernelize(graph)
        assert kern.num_reduced_nodes == 0
        assert kern.stats.dominated_removed == 15  # 3 twins per clique
        assert max_weight_independent_set(graph, kernel=True).weight == 5

    def test_twins_keep_heaviest(self):
        graph = clique(["light", "heavy", "mid"])
        graph.set_weight("light", 1)
        graph.set_weight("heavy", 9)
        graph.set_weight("mid", 5)
        result = max_weight_independent_set(graph, kernel=True)
        assert result.nodes == frozenset({"heavy"})

    def test_strict_subset_domination_fires(self):
        # The 3-cube plus a vertex z covering N[0] and more: N[0] is a
        # strict subset of N[z] with equal weights, so z is removed by
        # the subset tier — the cube has no twins and no low-degree
        # vertices, so no other rule can claim the removal.
        graph = _cube()
        graph.add_node("z", weight=1)
        for neighbor in (0, 1, 2, 4, 7):
            graph.add_edge("z", neighbor)
        kern = kernelize(graph)
        assert kern.stats.dominated_removed == 1
        assert kern.num_reduced_nodes == 8  # the untouched cube
        result = max_weight_independent_set(graph, kernel=True)
        brute = brute_force_max_weight_independent_set(graph)
        assert result.weight == brute.weight


class TestFoldedVertex:
    def test_identity_and_hash(self):
        assert FoldedVertex(3) == FoldedVertex(3)
        assert FoldedVertex(3) != FoldedVertex(4)
        assert hash(FoldedVertex(3)) == hash(FoldedVertex(3))
        assert FoldedVertex(0) != 0
        assert FoldedVertex(0) != (FoldedVertex, 0)
        assert repr(FoldedVertex(7)) == "FoldedVertex(7)"

    def test_never_escapes_into_witness(self):
        graph = WeightedGraph(nodes={i: 2 for i in range(5)})
        for i in range(5):
            graph.add_edge(i, (i + 1) % 5)
        result = max_weight_independent_set(graph, kernel=True)
        assert all(not isinstance(n, FoldedVertex) for n in result.nodes)


class TestKernelizationState:
    def test_identity_kernel_shares_cached_form(self):
        # The cube is irreducible: no journal entries, and the reduced
        # form IS the graph's own cached index form (zero copies).
        graph = _cube()
        kern = kernelize(graph)
        assert kern.is_identity
        assert kern.stats.removed_nodes == 0
        labels, weights, masks = kern.reduced_index_form()
        cached_labels, cached_weights, cached_masks, _ = (
            graph.solver_index_form()
        )
        assert labels is cached_labels
        assert weights is cached_weights
        assert masks is cached_masks

    def test_kernelization_cached_per_graph(self):
        graph = _path([1, 5, 1])
        assert kernelize(graph) is kernelize(graph)

    def test_mutation_invalidates_cached_kernelization(self):
        graph = _path([1, 5, 1])
        first = kernelize(graph)
        graph.set_weight(0, 7)
        second = kernelize(graph)
        assert second is not first
        assert max_weight_independent_set(graph, kernel=True).weight == (
            brute_force_max_weight_independent_set(graph).weight
        )

    def test_stats_as_dict_shape(self):
        stats = kernelize(_path([1, 5, 1, 5, 1])).stats
        record = stats.as_dict()
        assert record["initial_nodes"] == 5
        assert record["removed_nodes"] == stats.removed_nodes
        assert record["folds"] == stats.folds
        assert "KernelStats" in repr(stats)

    def test_negative_weight_rejected(self):
        graph = WeightedGraph(nodes={"a": -1})
        with pytest.raises(ValueError):
            kernelize(graph)

    def test_reduced_graph_matches_reduced_form(self):
        graph = _path([2, 1, 2, 1, 2, 9])
        kern = kernelize(graph)
        reduced = kern.reduced_graph()
        labels, weights, _ = kern.reduced_index_form()
        assert sorted(map(str, reduced.nodes())) == sorted(map(str, labels))
        assert sorted(reduced.weights().values()) == sorted(weights)

    def test_revert_after_folds(self):
        graph = _path([1, 2, 3, 2, 1])
        assert kernelize(graph).revert() == graph

    def test_pickle_drops_graph_side_cache(self):
        graph = _path([1, 5, 1])
        kernelize(graph)
        clone = pickle.loads(pickle.dumps(graph))
        assert clone == graph


class TestAmbientDefault:
    def test_default_is_on(self):
        assert kernel_default_enabled() is True

    def test_using_kernel_scopes_and_restores(self):
        assert kernel_default_enabled()
        with using_kernel(False):
            assert not kernel_default_enabled()
            with using_kernel(True):
                assert kernel_default_enabled()
            assert not kernel_default_enabled()
        assert kernel_default_enabled()

    def test_set_kernel_default_round_trip(self):
        try:
            set_kernel_default(False)
            assert not kernel_default_enabled()
            graph = _path([1, 5, 1])
            assert max_weight_independent_set(graph).weight == 5
        finally:
            set_kernel_default(True)
        assert kernel_default_enabled()

    def test_solver_respects_ambient_default(self):
        # Same optimum either way; this pins that the flag is consulted
        # (kernel path reduces the path to nothing => zero expansions).
        from repro.maxis import BranchAndBoundStats

        graph = _path([1, 5, 1, 5, 1])
        with using_kernel(True):
            stats_on = BranchAndBoundStats()
            max_weight_independent_set(graph, stats=stats_on)
        with using_kernel(False):
            stats_off = BranchAndBoundStats()
            max_weight_independent_set(graph, stats=stats_off)
        assert stats_on.nodes_expanded <= stats_off.nodes_expanded


class TestObservability:
    def test_counters_emitted_on_fresh_kernelization(self):
        from repro import obs

        with obs.recording() as recorder:
            graph = _path([1, 5, 1, 5, 1])
            kernelize(graph)
            kernelize(graph)  # cache hit
        assert recorder.counters.get("maxis.kernel.reductions") == 1
        assert recorder.counters.get("maxis.kernel.removed_nodes") == 5
        assert recorder.counters.get("maxis.kernel.reuses") == 1
        assert recorder.counters.get("maxis.kernel.folds", 0) >= 1
