"""Tests for the exact branch-and-bound MaxIS solver."""

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import WeightedGraph, clique, random_graph
from repro.maxis import (
    BranchAndBoundStats,
    brute_force_max_weight_independent_set,
    max_independent_set_weight,
    max_weight_independent_set,
)


class TestSmallGraphs:
    def test_empty_graph(self):
        result = max_weight_independent_set(WeightedGraph())
        assert result.weight == 0
        assert len(result) == 0

    def test_single_node(self):
        graph = WeightedGraph(nodes={"a": 5})
        result = max_weight_independent_set(graph)
        assert result.nodes == frozenset({"a"})
        assert result.weight == 5

    def test_edgeless_takes_everything(self):
        graph = WeightedGraph(nodes={chr(97 + i): i + 1 for i in range(5)})
        result = max_weight_independent_set(graph)
        assert result.weight == 15

    def test_single_edge_takes_heavier(self):
        graph = WeightedGraph(nodes={"a": 2, "b": 7})
        graph.add_edge("a", "b")
        result = max_weight_independent_set(graph)
        assert result.nodes == frozenset({"b"})

    def test_clique_takes_heaviest(self):
        graph = clique(["a", "b", "c", "d"])
        graph.set_weight("c", 10)
        result = max_weight_independent_set(graph)
        assert result.nodes == frozenset({"c"})

    def test_path_weighted(self):
        # Path a-b-c with weights 1, 3, 1: optimum is b (3).
        graph = WeightedGraph(nodes={"a": 1, "b": 3, "c": 1})
        graph.add_edge("a", "b")
        graph.add_edge("b", "c")
        assert max_weight_independent_set(graph).weight == 3

    def test_path_unweighted(self):
        # Path of 5 nodes: optimum size 3 (alternating).
        graph = WeightedGraph(edges=[(i, i + 1) for i in range(4)])
        assert max_weight_independent_set(graph).weight == 3

    def test_cycle5(self):
        graph = WeightedGraph(edges=[(i, (i + 1) % 5) for i in range(5)])
        assert max_weight_independent_set(graph).weight == 2

    def test_bipartite_takes_heavier_side(self):
        graph = WeightedGraph()
        for i in range(3):
            graph.add_node(("L", i), weight=1)
            graph.add_node(("R", i), weight=5)
        for i in range(3):
            for j in range(3):
                graph.add_edge(("L", i), ("R", j))
        assert max_weight_independent_set(graph).weight == 15

    def test_negative_weight_rejected(self):
        graph = WeightedGraph(nodes={"a": -1})
        with pytest.raises(ValueError):
            max_weight_independent_set(graph)

    @pytest.mark.parametrize("kernel", [True, False])
    def test_negative_weight_rejected_before_indexing(self, kernel):
        """Weight validation must precede index-form construction.

        The tripwire subclass makes any attempt to build an index form
        explode; the solver must still raise ValueError (not
        RuntimeError) on a negatively-weighted graph, proving the
        validation runs first on both the kernel and raw paths.
        """

        class TripwireGraph(WeightedGraph):
            __slots__ = ()

            def to_index_form(self, order=None):
                raise RuntimeError("index form built before validation")

            def solver_index_form(self):
                raise RuntimeError("index form built before validation")

        graph = TripwireGraph(nodes={"a": 1, "b": -2})
        graph.add_edge("a", "b")
        with pytest.raises(ValueError):
            max_weight_independent_set(graph, kernel=kernel)

    def test_weight_helper(self):
        graph = clique(["a", "b"], weight=4)
        assert max_independent_set_weight(graph) == 4

    def test_stats_populated(self):
        # With the kernel on, this instance may reduce to nothing and
        # expand zero nodes; the raw path must still count expansions.
        graph = random_graph(12, 0.4, rng=random.Random(0))
        stats = BranchAndBoundStats()
        max_weight_independent_set(graph, stats=stats, kernel=False)
        assert stats.nodes_expanded > 0
        kernel_stats = BranchAndBoundStats()
        max_weight_independent_set(graph, stats=kernel_stats, kernel=True)
        assert kernel_stats.nodes_expanded <= stats.nodes_expanded

    def test_result_is_independent(self):
        graph = random_graph(15, 0.5, rng=random.Random(1), weight_range=(1, 9))
        result = max_weight_independent_set(graph)
        assert graph.is_independent_set(result.nodes)


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_weighted_graphs(self, seed):
        rng = random.Random(seed)
        graph = random_graph(
            rng.randint(5, 16),
            rng.uniform(0.1, 0.8),
            rng=rng,
            weight_range=(1, 8),
        )
        fast = max_weight_independent_set(graph).weight
        slow = brute_force_max_weight_independent_set(graph).weight
        assert fast == slow

    @pytest.mark.parametrize("seed", range(6))
    def test_unweighted_against_networkx_complement_clique(self, seed):
        rng = random.Random(seed + 500)
        graph = random_graph(14, 0.5, rng=rng)
        ours = max_weight_independent_set(graph).weight
        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(graph.nodes())
        nx_graph.add_edges_from(graph.edges())
        their_clique, their_weight = nx.max_weight_clique(
            nx.complement(nx_graph), weight=None
        )
        assert ours == their_weight == len(their_clique)


class TestDenseCliqueStructured:
    def test_union_of_cliques_takes_one_per_clique(self):
        from repro.graphs import union_of_cliques

        groups = [[(h, r) for r in range(4)] for h in range(5)]
        graph = union_of_cliques(groups)
        assert max_weight_independent_set(graph).weight == 5

    def test_gadget_sized_instance_is_fast(self, linear_meaningful):
        # 90 dense nodes; must finish well under a second.
        result = max_weight_independent_set(linear_meaningful.graph)
        assert result.weight > 0


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(1, 12),
    p=st.floats(0.0, 1.0),
    seed=st.integers(0, 10_000),
)
def test_hypothesis_matches_brute_force(n, p, seed):
    graph = random_graph(n, p, rng=random.Random(seed), weight_range=(1, 5))
    fast = max_weight_independent_set(graph).weight
    slow = brute_force_max_weight_independent_set(graph).weight
    assert fast == slow
