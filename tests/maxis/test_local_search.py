"""Tests for (1,2)-swap local search."""

import random

import pytest

from repro.graphs import WeightedGraph, path_graph, random_graph, star_graph
from repro.maxis import (
    IndependentSetResult,
    greedy_by_weight,
    improve_by_swaps,
    max_weight_independent_set,
)


class TestImproveBySwaps:
    def test_never_worsens(self):
        for seed in range(6):
            graph = random_graph(
                18, 0.35, rng=random.Random(seed), weight_range=(1, 7)
            )
            seed_set = greedy_by_weight(graph)
            improved = improve_by_swaps(graph, seed_set)
            assert improved.weight >= seed_set.weight

    def test_never_beats_optimum(self):
        for seed in range(6):
            graph = random_graph(
                14, 0.4, rng=random.Random(seed + 30), weight_range=(1, 7)
            )
            improved = improve_by_swaps(graph, greedy_by_weight(graph))
            assert improved.weight <= max_weight_independent_set(graph).weight

    def test_result_is_independent(self):
        graph = random_graph(20, 0.3, rng=random.Random(9), weight_range=(1, 5))
        improved = improve_by_swaps(graph, greedy_by_weight(graph))
        assert graph.is_independent_set(improved.nodes)

    def test_adds_free_vertices(self):
        graph = WeightedGraph(nodes=["a", "b", "c"])
        partial = IndependentSetResult(graph, ["a"])
        improved = improve_by_swaps(graph, partial)
        assert improved.nodes == frozenset({"a", "b", "c"})

    def test_swaps_hub_for_leaves(self):
        """Star: starting from the hub, a (1,2)-swap reaches the leaves."""
        graph = star_graph("hub", ["x", "y", "z"])
        start = IndependentSetResult(graph, ["hub"])
        improved = improve_by_swaps(graph, start)
        assert improved.nodes == frozenset({"x", "y", "z"})

    def test_weighted_swap_respects_gain(self):
        """No swap when the single vertex outweighs any pair."""
        graph = star_graph("hub", ["x", "y"])
        graph.set_weight("hub", 10)
        start = IndependentSetResult(graph, ["hub"])
        improved = improve_by_swaps(graph, start)
        assert improved.nodes == frozenset({"hub"})

    def test_path_reaches_a_maximal_local_optimum(self):
        """P7 from node 1: additions give {1, 3, 5}, a genuine (1,2)-swap
        local optimum (reaching alpha = 4 needs a coordinated 2-swap)."""
        graph = path_graph(list(range(7)))
        start = IndependentSetResult(graph, [1])
        improved = improve_by_swaps(graph, start)
        assert improved.nodes == frozenset({1, 3, 5})
        # Running it again changes nothing: it is a fixed point.
        assert improve_by_swaps(graph, improved).nodes == improved.nodes

    def test_empty_start(self):
        graph = random_graph(10, 0.4, rng=random.Random(5))
        start = IndependentSetResult(graph, [])
        improved = improve_by_swaps(graph, start)
        assert improved.weight > 0
