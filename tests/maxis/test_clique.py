"""Tests for the max-weight clique wrapper."""

import random

import networkx as nx
import pytest

from repro.graphs import WeightedGraph, clique, cycle_graph, random_graph
from repro.maxis import max_weight_clique


class TestMaxWeightClique:
    def test_clique_graph_takes_everything(self):
        graph = clique(["a", "b", "c"], weight=2)
        result = max_weight_clique(graph)
        assert result.nodes == frozenset({"a", "b", "c"})
        assert result.weight == 6

    def test_edgeless_takes_heaviest_single(self):
        graph = WeightedGraph(nodes={"a": 1, "b": 5})
        result = max_weight_clique(graph)
        assert result.nodes == frozenset({"b"})

    def test_triangle_in_cycle(self):
        graph = cycle_graph(list(range(5)))
        result = max_weight_clique(graph)
        assert len(result.nodes) == 2  # best clique in C5 is an edge

    def test_weighted_choice(self):
        # Two triangles sharing nothing; the heavy one wins.
        graph = WeightedGraph()
        for name, weight in [("a", 1), ("b", 1), ("c", 1), ("x", 3), ("y", 3), ("z", 3)]:
            graph.add_node(name, weight=weight)
        graph.add_edges([("a", "b"), ("b", "c"), ("c", "a")])
        graph.add_edges([("x", "y"), ("y", "z"), ("z", "x")])
        assert max_weight_clique(graph).weight == 9

    @pytest.mark.parametrize("seed", range(6))
    def test_against_networkx(self, seed):
        graph = random_graph(
            13, 0.45, rng=random.Random(seed), weight_range=(1, 6)
        )
        ours = max_weight_clique(graph).weight
        nx_graph = nx.Graph()
        for node in graph.nodes():
            nx_graph.add_node(node, w=int(graph.weight(node)))
        nx_graph.add_edges_from(graph.edges())
        _, theirs = nx.max_weight_clique(nx_graph, weight="w")
        assert ours == theirs

    def test_result_is_clique(self):
        graph = random_graph(12, 0.5, rng=random.Random(9))
        result = max_weight_clique(graph)
        assert graph.is_clique(result.nodes)
