"""The bounded dispatch queue: ordering, backpressure, lifecycle."""

import threading
import time

import pytest

from repro.serve import Backpressure, Dispatcher


@pytest.fixture
def dispatcher():
    d = Dispatcher(queue_limit=4)
    yield d
    d.close()


class TestDispatcher:
    def test_submit_runs_and_returns_result(self, dispatcher):
        assert dispatcher.submit(lambda: 6 * 7).result(timeout=10) == 42

    def test_exceptions_propagate_through_the_future(self, dispatcher):
        def boom():
            raise ValueError("unit failed")

        future = dispatcher.submit(boom)
        with pytest.raises(ValueError, match="unit failed"):
            future.result(timeout=10)

    def test_submissions_execute_in_order(self):
        dispatcher = Dispatcher(queue_limit=16)
        order = []
        futures = [
            dispatcher.submit(lambda i=i: order.append(i)) for i in range(10)
        ]
        for future in futures:
            future.result(timeout=10)
        dispatcher.close()
        assert order == list(range(10))

    def test_queue_limit_raises_backpressure(self):
        with Dispatcher(queue_limit=2) as dispatcher:
            release = threading.Event()
            held = [
                dispatcher.submit(lambda: release.wait(timeout=30))
                for _ in range(2)
            ]
            with pytest.raises(Backpressure) as excinfo:
                dispatcher.submit(lambda: None)
            assert excinfo.value.pending == 2
            assert excinfo.value.limit == 2
            assert excinfo.value.retry_after_s >= 1.0
            release.set()
            for future in held:
                future.result(timeout=30)
            # Draining the queue restores admission.
            assert dispatcher.submit(lambda: "ok").result(timeout=10) == "ok"

    def test_stats_track_execution(self, dispatcher):
        dispatcher.submit(lambda: None).result(timeout=10)
        with pytest.raises(ZeroDivisionError):
            dispatcher.submit(lambda: 1 / 0).result(timeout=10)
        deadline = time.monotonic() + 10
        while dispatcher.stats()["executed"] < 2:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        stats = dispatcher.stats()
        assert stats["executed"] == 2
        assert stats["pending"] == 0
        assert stats["rejected"] == 0
        assert stats["queue_limit"] == 4
        assert stats["ema_cost_s"] is not None

    def test_rejections_are_counted(self):
        with Dispatcher(queue_limit=1) as dispatcher:
            release = threading.Event()
            held = dispatcher.submit(lambda: release.wait(timeout=30))
            for _ in range(3):
                with pytest.raises(Backpressure):
                    dispatcher.submit(lambda: None)
            assert dispatcher.stats()["rejected"] == 3
            release.set()
            held.result(timeout=30)

    def test_close_refuses_new_work(self):
        dispatcher = Dispatcher(queue_limit=4)
        dispatcher.close()
        with pytest.raises(RuntimeError, match="closed"):
            dispatcher.submit(lambda: None)

    def test_close_drains_queued_work(self):
        dispatcher = Dispatcher(queue_limit=8)
        done = []
        futures = [
            dispatcher.submit(lambda i=i: done.append(i)) for i in range(5)
        ]
        dispatcher.close()
        for future in futures:
            future.result(timeout=10)
        assert done == list(range(5))

    def test_invalid_queue_limit(self):
        with pytest.raises(ValueError):
            Dispatcher(queue_limit=0)
