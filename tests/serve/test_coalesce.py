"""Coalescing: N identical concurrent requests, one computation.

The acceptance criterion of the serve subsystem, proven with counter
assertions: the first request of a key is the leader (``computed``,
one ``serve.cache_miss``), every concurrent duplicate is a follower
(``coalesced``) that never reaches the store or the dispatch queue.
Determinism comes from gating the underlying job function on an event
so all followers provably arrive while the leader is in flight.
"""

import concurrent.futures
import threading
import time

import pytest

from repro import obs
from repro.parallel import jobs

BODY = {"construction": "linear", "params": {"ell": 2, "alpha": 1, "t": 3}}


class GatedJob:
    """Wrap a job kind: count calls, block until released."""

    def __init__(self, fn):
        self.fn = fn
        self.calls = 0
        self.started = threading.Event()
        self.release = threading.Event()

    def __call__(self, **kwargs):
        self.calls += 1
        self.started.set()
        assert self.release.wait(timeout=30), "gate never released"
        return self.fn(**kwargs)


@pytest.fixture
def gated_gadget(monkeypatch):
    gate = GatedJob(jobs.JOB_KINDS["gadget_graph"])
    monkeypatch.setitem(jobs.JOB_KINDS, "gadget_graph", gate)
    return gate


def post_many(client, path, body, n):
    with concurrent.futures.ThreadPoolExecutor(n) as pool:
        return list(pool.map(lambda _: client.post(path, body), range(n)))


class TestCoalescing:
    N = 8

    def test_n_identical_requests_one_computation(self, served, gated_gadget):
        with obs.recording() as recorder:
            with concurrent.futures.ThreadPoolExecutor(self.N) as pool:
                futures = [
                    pool.submit(served.post, "/v1/gadgets", BODY)
                    for _ in range(self.N)
                ]
                assert gated_gadget.started.wait(timeout=30)
                # The leader is inside the gate; wait until every other
                # request has registered as a follower, then release.
                deadline = time.monotonic() + 30
                while recorder.counters.get("serve.coalesced", 0) < self.N - 1:
                    assert time.monotonic() < deadline, "followers never arrived"
                    time.sleep(0.01)
                gated_gadget.release.set()
                results = [future.result() for future in futures]

            assert gated_gadget.calls == 1
            statuses = [status for status, _, _ in results]
            assert statuses == [200] * self.N
            dispositions = sorted(d["disposition"] for _, d, _ in results)
            assert dispositions == ["coalesced"] * (self.N - 1) + ["computed"]
            # All followers received the leader's exact payload.
            payloads = {str(sorted(d["result"].items())) for _, d, _ in results}
            assert len(payloads) == 1
            keys = {d["key"] for _, d, _ in results}
            assert len(keys) == 1

            counters = recorder.counters
            assert counters["serve.computed"] == 1
            assert counters["serve.cache_miss"] == 1
            assert counters["serve.coalesced"] == self.N - 1
            assert counters.get("serve.cache_hit", 0) == 0

    def test_distinct_requests_do_not_coalesce(self, served, gated_gadget):
        gated_gadget.release.set()
        other = {"construction": "linear", "params": {"ell": 2, "alpha": 1, "t": 2}}
        with obs.recording() as recorder:
            status_a, a, _ = served.post("/v1/gadgets", BODY)
            status_b, b, _ = served.post("/v1/gadgets", other)
            assert status_a == status_b == 200
            assert a["key"] != b["key"]
            assert recorder.counters["serve.computed"] == 2
            assert recorder.counters.get("serve.coalesced", 0) == 0
        assert gated_gadget.calls == 2

    def test_sequential_duplicates_recompute_without_a_store(self, served, gated_gadget):
        gated_gadget.release.set()
        _, first, _ = served.post("/v1/gadgets", BODY)
        _, second, _ = served.post("/v1/gadgets", BODY)
        # No store configured: once the in-flight entry is gone the next
        # request computes again (coalescing is not a cache).
        assert first["disposition"] == second["disposition"] == "computed"
        assert gated_gadget.calls == 2

    def test_store_turns_late_duplicates_into_cache_hits(self, served, gated_gadget):
        from repro import store

        gated_gadget.release.set()
        with store.using_store("memory"):
            _, first, _ = served.post("/v1/gadgets", BODY)
            _, second, _ = served.post("/v1/gadgets", BODY)
        assert first["disposition"] == "computed"
        assert second["disposition"] == "cache_hit"
        assert first["result"] == second["result"]
        assert gated_gadget.calls == 1

    def test_leader_failure_propagates_to_followers(self, served, monkeypatch):
        started = threading.Event()
        release = threading.Event()

        def boom(**kwargs):
            started.set()
            assert release.wait(timeout=30)
            raise RuntimeError("gadget exploded")

        monkeypatch.setitem(jobs.JOB_KINDS, "gadget_graph", boom)
        with concurrent.futures.ThreadPoolExecutor(4) as pool:
            futures = [
                pool.submit(served.post, "/v1/gadgets", BODY) for _ in range(4)
            ]
            assert started.wait(timeout=30)
            time.sleep(0.2)  # let followers join the in-flight future
            release.set()
            results = [future.result() for future in futures]
        for status, document, _ in results:
            assert status == 500
            assert document["error"] == "internal error"
            assert "gadget exploded" in document["exception"]


class TestBackpressure:
    def test_queue_full_is_429_with_retry_after(self, served_tiny_queue):
        client = served_tiny_queue
        release = threading.Event()
        client.app.dispatcher.submit(lambda: release.wait(timeout=30))
        try:
            with obs.recording() as recorder:
                status, document, headers = client.post("/v1/gadgets", BODY)
                assert status == 429
                assert document["error"] == "dispatch queue full"
                assert document["queue_limit"] == 1
                assert document["retry_after_s"] >= 1.0
                assert int(headers["Retry-After"]) >= 1
                assert recorder.counters["serve.backpressure"] == 1
        finally:
            release.set()

    def test_shed_request_succeeds_after_queue_drains(self, served_tiny_queue):
        client = served_tiny_queue
        release = threading.Event()
        blocker = client.app.dispatcher.submit(lambda: release.wait(timeout=30))
        status, _, _ = client.post("/v1/gadgets", BODY)
        assert status == 429
        release.set()
        blocker.result(timeout=30)
        status, document, _ = client.post("/v1/gadgets", BODY)
        assert status == 200
        assert document["disposition"] == "computed"
