"""Satellite: serve payloads round-trip the store codecs byte for byte.

Every JSON endpoint embeds its ``result`` as the parsed form of the
store codec's canonical payload: re-dumping the response's ``result``
with ``sort_keys=True, separators=(",", ":")`` must reproduce the exact
bytes the codec stores (graph, claim_check, report, node_list).  That
is what makes a response auditable against the cache — and what makes a
warm (``cache_hit``) response byte-identical to the cold (``computed``)
one that populated it.

The second half pins the failure plane: malformed request bodies come
back as structured 400 JSON documents, never tracebacks.
"""

import json

import pytest

from repro import store
from repro.gadgets import GadgetParameters
from repro.graphs.serialize import decode_node, graph_to_dict
from repro.parallel.jobs import execute_unit
from repro.store import get_codec

PARAMS = {"ell": 2, "alpha": 1, "t": 3}


def canonical_bytes(document):
    """Re-dump a response ``result`` exactly as the codecs serialize."""
    return json.dumps(document, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


class TestByteDeterminism:
    def test_gadget_result_is_the_graph_codec_payload(self, served):
        _, document, _ = served.post(
            "/v1/gadgets", {"construction": "linear", "params": PARAMS}
        )
        expected = execute_unit(
            "gadget_graph", dict(PARAMS, construction="linear", k=None)
        )
        assert canonical_bytes(document["result"]) == canonical_bytes(
            json.loads(get_codec("graph").encode(expected))
        )

    def test_graph_codec_is_stable_under_decode_reencode(self):
        codec = get_codec("graph")
        graph = execute_unit(
            "gadget_graph", dict(PARAMS, construction="linear", k=None)
        )
        payload = codec.encode(graph)
        assert codec.encode(codec.decode(payload)) == payload

    def test_claim_result_is_the_claim_check_codec_payload(self, served):
        from repro.core import linear_claim_names

        params = GadgetParameters(**PARAMS)
        name = linear_claim_names(params)[0]
        _, document, _ = served.post(
            "/v1/claims",
            {"family": "linear", "name": name, "params": PARAMS, "num_samples": 2},
        )
        expected = execute_unit(
            "linear_claim", dict(PARAMS, k=None, name=name, num_samples=2)
        )
        assert canonical_bytes(document["result"]) == get_codec(
            "claim_check"
        ).encode(expected)

    def test_maxis_witness_matches_the_node_list_codec(self, served):
        graph = execute_unit(
            "gadget_graph", dict(PARAMS, construction="linear", k=None)
        )
        _, document, _ = served.post(
            "/v1/maxis", {"graph": graph_to_dict(graph), "mode": "exact"}
        )
        witness = document["result"]["witness"]
        nodes = [decode_node(item) for item in witness]
        assert canonical_bytes(witness) == get_codec("node_list").encode(nodes)

    def test_sweep_results_are_report_codec_payloads(self, served):
        from tests.serve.test_endpoints import wait_for_job

        _, submitted, _ = served.post(
            "/v1/sweeps",
            {"sweep": "theorem2", "max_t": 2, "num_samples": 1, "seed": 0},
        )
        finished = wait_for_job(served, submitted["job_id"])
        expected = execute_unit(
            "theorem2_point", {"ell": 2, "t": 2, "num_samples": 1, "seed": 0}
        )
        assert canonical_bytes(finished["result"][0]) == get_codec(
            "report"
        ).encode(expected)

    def test_warm_response_is_byte_identical_to_cold(self, served):
        body = {"construction": "quadratic", "params": {"ell": 2, "alpha": 1, "t": 2}}
        with store.using_store("memory"):
            _, cold, _ = served.post("/v1/gadgets", body)
            _, warm, _ = served.post("/v1/gadgets", body)
        assert cold["disposition"] == "computed"
        assert warm["disposition"] == "cache_hit"
        assert canonical_bytes(cold["result"]) == canonical_bytes(warm["result"])
        assert cold["key"] == warm["key"]


class TestMalformedBodies:
    """Every malformed body is a structured 400 — never a traceback."""

    def assert_structured_400(self, response):
        status, document, _ = response
        assert status == 400
        assert isinstance(document, dict)
        assert "error" in document
        assert "Traceback" not in json.dumps(document)
        return document

    @pytest.mark.parametrize("path", ["/v1/claims", "/v1/gadgets", "/v1/maxis", "/v1/sweeps"])
    def test_empty_body(self, served, path):
        document = self.assert_structured_400(served.post(path, None, raw=b""))
        assert document["error"] == "request body must be a JSON object"

    @pytest.mark.parametrize("path", ["/v1/claims", "/v1/gadgets", "/v1/maxis", "/v1/sweeps"])
    def test_invalid_json(self, served, path):
        document = self.assert_structured_400(
            served.post(path, None, raw=b"{not json")
        )
        assert document["error"] == "request body is not valid JSON"
        assert "reason" in document["detail"]

    def test_json_array_body(self, served):
        document = self.assert_structured_400(
            served.post("/v1/gadgets", [1, 2, 3])
        )
        assert document["detail"] == {"got": "list"}

    def test_missing_params(self, served):
        self.assert_structured_400(
            served.post("/v1/gadgets", {"construction": "linear"})
        )

    def test_non_integer_parameter(self, served):
        document = self.assert_structured_400(
            served.post(
                "/v1/gadgets",
                {"construction": "linear", "params": {"ell": "two", "alpha": 1, "t": 3}},
            )
        )
        assert "'ell'" in document["error"]
        assert document["detail"] == {"got": "two"}

    def test_boolean_is_not_an_integer(self, served):
        self.assert_structured_400(
            served.post(
                "/v1/gadgets",
                {"construction": "linear", "params": {"ell": True, "alpha": 1, "t": 3}},
            )
        )

    def test_unknown_parameter_field(self, served):
        document = self.assert_structured_400(
            served.post(
                "/v1/gadgets",
                {
                    "construction": "linear",
                    "params": {"ell": 2, "alpha": 1, "t": 3, "bogus": 9},
                },
            )
        )
        assert document["detail"] == {"fields": ["bogus"]}

    def test_bad_family(self, served):
        document = self.assert_structured_400(
            served.post("/v1/claims", {"family": "cubic", "params": PARAMS})
        )
        assert document["detail"] == {"got": "cubic"}

    def test_bad_maxis_mode(self, served):
        document = self.assert_structured_400(
            served.post("/v1/maxis", {"graph": {}, "mode": "quantum"})
        )
        assert document["detail"] == {"got": "quantum"}

    def test_malformed_graph_payload(self, served):
        document = self.assert_structured_400(
            served.post(
                "/v1/maxis",
                {"graph": {"nodes": [{"id": 1}], "edges": []}, "mode": "exact"},
            )
        )
        assert document["error"] == "malformed graph payload"

    def test_graph_must_be_an_object(self, served):
        self.assert_structured_400(
            served.post("/v1/maxis", {"graph": "not-a-graph", "mode": "exact"})
        )

    def test_bad_sweep_name(self, served):
        document = self.assert_structured_400(
            served.post("/v1/sweeps", {"sweep": "theorem9", "max_t": 3})
        )
        assert document["detail"] == {"got": "theorem9"}

    def test_num_samples_must_be_positive(self, served):
        self.assert_structured_400(
            served.post(
                "/v1/sweeps", {"sweep": "theorem1", "max_t": 3, "num_samples": 0}
            )
        )
