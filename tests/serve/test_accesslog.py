"""Access log: schema, parent-dir creation, and ``repro stats`` replay."""

import json

import pytest

from repro.serve import ACCESS_SCHEMA_VERSION, AccessLog
from repro.serve import Application, BackgroundServer


def _read_lines(path):
    return [
        json.loads(line)
        for line in path.read_text(encoding="utf-8").splitlines()
        if line
    ]


class TestAccessLog:
    def test_meta_header_and_record_schema(self, tmp_path):
        path = tmp_path / "access.jsonl"
        with AccessLog(path) as log:
            log.record(
                trace_id="ab" * 16,
                span_id="cd" * 8,
                method="POST",
                path="/v1/maxis",
                endpoint="POST /v1/maxis",
                status=200,
                disposition="computed",
                queue_wait_ms=1.234567,
                handler_ms=10.0,
                duration_ms=11.5,
            )
        lines = _read_lines(path)
        assert len(lines) == 2
        meta, record = lines
        assert meta["type"] == "access_meta"
        assert meta["access_schema_version"] == ACCESS_SCHEMA_VERSION
        assert meta["command"] == "serve"
        assert "git_sha" in meta["provenance"]
        assert record["type"] == "access"
        assert record["trace_id"] == "ab" * 16
        assert record["endpoint"] == "POST /v1/maxis"
        assert record["queue_wait_ms"] == 1.235  # rounded
        assert record["error"] is None

    def test_creates_missing_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "dirs" / "access.jsonl"
        assert not path.parent.exists()
        with AccessLog(path) as log:
            assert log.records_written == 0
        assert path.exists()
        assert _read_lines(path)[0]["type"] == "access_meta"

    def test_appends_across_reopen(self, tmp_path):
        path = tmp_path / "access.jsonl"
        for _ in range(2):
            with AccessLog(path):
                pass
        metas = [l for l in _read_lines(path) if l["type"] == "access_meta"]
        assert len(metas) == 2

    def test_close_is_idempotent_and_silences_records(self, tmp_path):
        path = tmp_path / "access.jsonl"
        log = AccessLog(path)
        log.close()
        log.close()
        log.record(
            trace_id="ab" * 16, span_id="cd" * 8, method="GET", path="/health",
            endpoint="GET /health", status=200, disposition=None,
            queue_wait_ms=None, handler_ms=0.1, duration_ms=0.2,
        )
        assert len(_read_lines(path)) == 1  # just the meta line


class TestServedAccessLog:
    def test_every_request_logged_with_trace_id(self, tmp_path):
        from tests.serve.conftest import Client

        path = tmp_path / "logs" / "access.jsonl"
        app = Application(access_log=AccessLog(path))
        server = BackgroundServer(app.dispatch).start()
        try:
            client = Client(app, server)
            traceparent = f"00-{'ab' * 16}-{'cd' * 8}-01"
            client.get("/health", headers={"traceparent": traceparent})
            status, _, _ = client.post("/v1/gadgets", {"construction": "nope"})
            assert status == 400
        finally:
            server.close()
            app.close()
        records = [l for l in _read_lines(path) if l["type"] == "access"]
        assert len(records) == 2
        health, bad = records
        assert health["trace_id"] == "ab" * 16
        assert health["endpoint"] == "GET /health"
        assert health["status"] == 200
        assert bad["status"] == 400
        assert bad["error"]
        assert bad["duration_ms"] >= bad["handler_ms"] >= 0.0


class TestStatsReplay:
    @pytest.fixture
    def access_file(self, tmp_path):
        path = tmp_path / "access.jsonl"
        with AccessLog(path) as log:
            for index in range(5):
                log.record(
                    trace_id=format(index + 1, "02x") * 16,
                    span_id="cd" * 8,
                    method="POST",
                    path="/v1/maxis",
                    endpoint="POST /v1/maxis",
                    status=200,
                    disposition="computed",
                    queue_wait_ms=0.5,
                    handler_ms=float(index + 1),
                    duration_ms=float(index + 1) + 0.5,
                )
            log.record(
                trace_id="ee" * 16,
                span_id="cd" * 8,
                method="GET",
                path="/health",
                endpoint="GET /health",
                status=500,
                disposition=None,
                queue_wait_ms=None,
                handler_ms=0.1,
                duration_ms=0.2,
                error="boom",
            )
        return path

    def test_render_stats_file_summarizes_endpoints(self, access_file):
        from repro.obs.stats import render_stats_file

        text = render_stats_file(access_file)
        assert "access_meta" in text or "Access log" in text
        assert "POST /v1/maxis" in text
        assert "GET /health" in text
        assert "ee" * 16 in text  # slowest-requests table keys by trace id

    def test_cli_stats_replays_access_log(self, access_file, capsys):
        from repro.cli import main

        assert main(["stats", str(access_file)]) == 0
        out = capsys.readouterr().out
        assert "POST /v1/maxis" in out
