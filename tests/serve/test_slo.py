"""SLO plane: registry math, CLI spec parsing, /metrics integration."""

import pytest

from repro.serve import endpoint_template
from repro.serve.slo import (
    DEFAULT_OBJECTIVE,
    DEFAULT_TARGET_MS,
    DEFAULT_TARGETS_MS,
    SLORegistry,
    parse_slo_spec,
)


class TestEndpointTemplate:
    @pytest.mark.parametrize(
        ("method", "path", "expected"),
        [
            ("GET", "/health", "GET /health"),
            ("POST", "/v1/maxis", "POST /v1/maxis"),
            ("GET", "/v1/jobs/0123abcd", "GET /v1/jobs/<id>"),
            ("GET", "/v1/traces/" + "ab" * 16, "GET /v1/traces/<id>"),
            ("GET", "/v1/traces", "GET /v1/traces"),
        ],
    )
    def test_path_parameters_collapse(self, method, path, expected):
        assert endpoint_template(method, path) == expected


class TestSLORegistry:
    def test_targets_default_and_override(self):
        registry = SLORegistry(targets_ms={"POST /v1/maxis": 50.0})
        assert registry.target_ms("POST /v1/maxis") == 50.0
        assert registry.target_ms("POST /v1/claims") == DEFAULT_TARGETS_MS[
            "POST /v1/claims"
        ]
        assert registry.target_ms("GET /health") == DEFAULT_TARGET_MS

    def test_objective_validated(self):
        with pytest.raises(ValueError):
            SLORegistry(objective=0.0)
        with pytest.raises(ValueError):
            SLORegistry(objective=1.0)

    def test_breach_classification(self):
        registry = SLORegistry(targets_ms={"GET /x": 100.0})
        assert registry.observe("GET /x", 10.0, 200) is False
        assert registry.observe("GET /x", 150.0, 200) is True  # slow
        assert registry.observe("GET /x", 10.0, 500) is True  # errored
        assert registry.observe("GET /x", 10.0, 404) is False  # 4xx is fine

    def test_attainment_and_burn_math(self):
        registry = SLORegistry(targets_ms={"GET /x": 100.0}, objective=0.9)
        for _ in range(8):
            registry.observe("GET /x", 1.0, 200)
        registry.observe("GET /x", 500.0, 200)
        registry.observe("GET /x", 1.0, 503)
        state = registry.snapshot()["GET /x"]
        assert state["requests"] == 10
        assert state["breaches"] == 2
        assert state["errors"] == 1
        assert state["slow"] == 1
        assert state["attainment"] == pytest.approx(0.8)
        # breach rate 0.2 against a 0.1 budget: burning at 2x.
        assert state["error_budget_burn"] == pytest.approx(2.0)

    def test_worst_exemplar_tracks_trace_id(self):
        registry = SLORegistry()
        registry.observe("GET /x", 5.0, 200, trace_id="aa" * 16)
        registry.observe("GET /x", 50.0, 200, trace_id="bb" * 16)
        registry.observe("GET /x", 7.0, 200, trace_id="cc" * 16)
        state = registry.snapshot()["GET /x"]
        assert state["worst_ms"] == pytest.approx(50.0)
        assert state["worst_trace_id"] == "bb" * 16

    def test_prometheus_lines_shape(self):
        registry = SLORegistry()
        assert registry.prometheus_lines() == []
        registry.observe("POST /v1/maxis", 12.0, 200)
        lines = registry.prometheus_lines()
        text = "\n".join(lines)
        assert "# TYPE repro_serve_slo_attainment gauge" in text
        assert (
            'repro_serve_slo_requests_total{endpoint="POST /v1/maxis"} 1'
            in text
        )
        assert (
            'repro_serve_slo_objective{endpoint="POST /v1/maxis"} '
            f"{DEFAULT_OBJECTIVE}" in text
        )


class TestParseSLOSpec:
    def test_valid_specs(self):
        assert parse_slo_spec(["POST /v1/maxis=1500"]) == {
            "POST /v1/maxis": 1500.0
        }
        assert parse_slo_spec(["GET /health=5.5", "POST /v1/sweeps=100"]) == {
            "GET /health": 5.5,
            "POST /v1/sweeps": 100.0,
        }

    @pytest.mark.parametrize(
        "spec",
        ["no-equals", "=100", "GET /x=", "GET /x=fast", "GET /x=-5", "GET /x=0"],
    )
    def test_malformed_specs_raise(self, spec):
        with pytest.raises(ValueError):
            parse_slo_spec([spec])


class TestServedIntegration:
    def test_metrics_expose_slo_series(self, served):
        served.get("/health")
        status, body, _ = served.get("/metrics")
        assert status == 200
        text = body.decode()
        assert 'repro_serve_slo_attainment{endpoint="GET /health"}' in text
        assert (
            'repro_serve_slo_error_budget_burn{endpoint="GET /health"}' in text
        )
        assert text.endswith("\n")

    def test_health_carries_slo_snapshot(self, served):
        served.get("/health")
        _, health = served.get_json("/health")
        assert "GET /health" in health["slo"]
        state = health["slo"]["GET /health"]
        assert state["objective"] == DEFAULT_OBJECTIVE
        assert state["requests"] >= 1
        assert "traces" in health and health["traces"]["capacity"] >= 1

    def test_breach_increments_recorder_counter(self, served):
        from repro import obs
        from repro.serve import Application, BackgroundServer, SLORegistry
        from tests.serve.conftest import Client

        app = Application(slo=SLORegistry(default_target_ms=0.001))
        server = BackgroundServer(app.dispatch).start()
        try:
            client = Client(app, server)
            with obs.recording() as recorder:
                client.get("/health")
            assert recorder.keyed_counters["serve.slo_breaches"][
                "GET /health"
            ] >= 1
        finally:
            server.close()
            app.close()
