"""The HTTP layer: strict parsing, structured rejections, keep-alive."""

import json
import socket

from repro.serve import MAX_BODY_BYTES


def raw_exchange(client, payload, recv_bytes=65536):
    """Send raw bytes to the served port and return the raw response."""
    with socket.create_connection(("127.0.0.1", client.server.port), timeout=10) as s:
        s.sendall(payload)
        s.shutdown(socket.SHUT_WR)  # half-close: the server sees EOF after payload
        s.settimeout(10)
        chunks = []
        try:
            while True:
                chunk = s.recv(recv_bytes)
                if not chunk:
                    break
                chunks.append(chunk)
        except socket.timeout:
            pass
        return b"".join(chunks)


def body_of(response):
    head, _, body = response.partition(b"\r\n\r\n")
    return head, body


class TestParsing:
    def test_malformed_request_line_is_structured_400(self, served):
        response = raw_exchange(served, b"GARBAGE\r\n\r\n")
        head, body = body_of(response)
        assert b"400" in head.splitlines()[0]
        assert json.loads(body) == {"error": "malformed request line"}

    def test_unsupported_protocol_version(self, served):
        response = raw_exchange(served, b"GET / HTTP/2.0\r\n\r\n")
        head, body = body_of(response)
        assert b"505" in head.splitlines()[0]
        assert "unsupported protocol" in json.loads(body)["error"]

    def test_malformed_header_line(self, served):
        response = raw_exchange(served, b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")
        head, body = body_of(response)
        assert b"400" in head.splitlines()[0]
        assert json.loads(body)["error"] == "malformed header line"

    def test_bad_content_length(self, served):
        response = raw_exchange(
            served, b"POST /v1/claims HTTP/1.1\r\nContent-Length: nope\r\n\r\n"
        )
        head, body = body_of(response)
        assert b"400" in head.splitlines()[0]
        assert json.loads(body)["error"] == "malformed content-length"

    def test_oversized_body_is_413(self, served):
        response = raw_exchange(
            served,
            f"POST /v1/claims HTTP/1.1\r\nContent-Length: {MAX_BODY_BYTES + 1}\r\n\r\n".encode(),
        )
        head, body = body_of(response)
        assert b"413" in head.splitlines()[0]
        assert "exceeds" in json.loads(body)["error"]

    def test_chunked_transfer_is_declined(self, served):
        response = raw_exchange(
            served,
            b"POST /v1/claims HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        )
        head, body = body_of(response)
        assert b"501" in head.splitlines()[0]
        assert "chunked" in json.loads(body)["error"]

    def test_truncated_body_is_400(self, served):
        response = raw_exchange(
            served,
            b"POST /v1/claims HTTP/1.1\r\nContent-Length: 100\r\n\r\n{}",
        )
        head, body = body_of(response)
        assert b"400" in head.splitlines()[0]
        assert "shorter than content-length" in json.loads(body)["error"]


class TestRouting:
    def test_unknown_path_is_404_with_path_list(self, served):
        status, document = served.get_json("/nope")
        assert status == 404
        assert document["error"] == "unknown path"
        assert "/v1/claims" in document["paths"]

    def test_method_not_allowed_on_compute_endpoint(self, served):
        status, body, headers = served.get("/v1/claims")
        assert status == 405
        assert headers.get("Allow") == "POST"
        assert json.loads(body)["allowed"] == ["POST"]

    def test_index_lists_endpoints(self, served):
        status, document = served.get_json("/")
        assert status == 200
        assert document["service"] == "repro-serve"
        assert "POST /v1/claims" in document["endpoints"]

    def test_keep_alive_serves_multiple_requests_on_one_connection(self, served):
        request = b"GET /health HTTP/1.1\r\n\r\n"
        response = raw_exchange(served, request + request)
        assert response.count(b"HTTP/1.1 200 OK") == 2
        assert b"Connection: keep-alive" in response

    def test_connection_close_is_honored(self, served):
        response = raw_exchange(
            served, b"GET /health HTTP/1.1\r\nConnection: close\r\n\r\n"
        )
        assert b"Connection: close" in response

    def test_health_reports_queue_and_cache_state(self, served):
        status, document = served.get_json("/health")
        assert status == 200
        assert document["status"] == "ok"
        assert document["cache"] == "off"
        assert document["dispatch"]["queue_limit"] >= 1
        assert document["jobs"] == {"total": 0, "active": 0}

    def test_metrics_renders_prometheus_exposition(self, served):
        served.get_json("/health")
        status, body, headers = served.get("/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert b"repro_build_info" in body

    def test_progress_is_json(self, served):
        status, document = served.get_json("/progress")
        assert status == 200
        assert "live_schema_version" in document
