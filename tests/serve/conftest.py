"""Shared fixtures: one in-process server + a tiny urllib client."""

import json
import urllib.error
import urllib.request

import pytest

from repro.serve import Application, BackgroundServer, Dispatcher


class Client:
    """Blocking JSON client against one served application."""

    def __init__(self, app, server):
        self.app = app
        self.server = server
        self.url = server.url

    def get(self, path, timeout=30, headers=None):
        request = urllib.request.Request(
            self.url + path, headers=headers or {}, method="GET"
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as r:
                return r.status, r.read(), dict(r.headers)
        except urllib.error.HTTPError as error:
            return error.code, error.read(), dict(error.headers)

    def get_json(self, path, timeout=30, headers=None):
        status, body, _ = self.get(path, timeout=timeout, headers=headers)
        return status, json.loads(body)

    def post(self, path, document, timeout=60, raw=None, headers=None):
        data = raw if raw is not None else json.dumps(document).encode()
        request = urllib.request.Request(
            self.url + path, data=data, headers=headers or {}, method="POST"
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as r:
                return r.status, json.loads(r.read()), dict(r.headers)
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read()), dict(error.headers)


@pytest.fixture
def served():
    """An Application served in-process on an ephemeral port."""
    app = Application()
    server = BackgroundServer(app.dispatch).start()
    try:
        yield Client(app, server)
    finally:
        server.close()
        app.close()


@pytest.fixture
def served_tiny_queue():
    """Same, but with a single-slot dispatch queue (backpressure tests)."""
    app = Application(dispatcher=Dispatcher(queue_limit=1))
    server = BackgroundServer(app.dispatch).start()
    try:
        yield Client(app, server)
    finally:
        server.close()
        app.close()
