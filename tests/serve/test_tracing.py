"""End-to-end request tracing through the serve stack.

The tentpole acceptance path: a request with a client-supplied
``traceparent`` yields a retained span tree whose dispatch-queue,
store-lookup, and solver spans all share that trace id; coalesced
duplicates link to the leader's trace; malformed headers degrade to a
fresh mint (never a 500); and the Chrome-trace export of a stored
trace is byte-deterministic.
"""

import concurrent.futures
import json
import threading
import time

import pytest

from repro import obs, store
from repro.parallel import jobs
from repro.parallel.jobs import execute_unit
from repro.graphs.serialize import graph_to_dict

GADGET_BODY = {"construction": "linear", "params": {"ell": 2, "alpha": 1, "t": 3}}
CLIENT_TRACE_ID = "ab" * 16
CLIENT_SPAN_ID = "cd" * 8
CLIENT_TRACEPARENT = f"00-{CLIENT_TRACE_ID}-{CLIENT_SPAN_ID}-01"


def _maxis_body(mode="greedy"):
    graph = execute_unit(
        "gadget_graph",
        {"construction": "linear", "ell": 2, "alpha": 1, "t": 2, "k": None},
    )
    return {"graph": graph_to_dict(graph), "mode": mode}


class TestTraceparentPropagation:
    def test_client_trace_id_is_adopted_and_echoed(self, served):
        status, document, headers = served.post(
            "/v1/gadgets", GADGET_BODY,
            headers={"traceparent": CLIENT_TRACEPARENT},
        )
        assert status == 200
        echoed = headers["traceparent"]
        version, trace_id, span_id, flags = echoed.split("-")
        assert version == "00"
        assert trace_id == CLIENT_TRACE_ID
        assert span_id != CLIENT_SPAN_ID  # a fresh server-side span
        assert flags == "01"

    def test_fresh_trace_minted_without_header(self, served):
        _, _, headers_a = served.get("/health")
        _, _, headers_b = served.get("/health")
        trace_a = headers_a["traceparent"].split("-")[1]
        trace_b = headers_b["traceparent"].split("-")[1]
        assert trace_a != trace_b
        assert len(trace_a) == 32

    @pytest.mark.parametrize(
        "header",
        [
            "garbage",
            "00",
            f"00-{CLIENT_TRACE_ID}",
            f"00-{CLIENT_TRACE_ID}-{CLIENT_SPAN_ID}",
            f"01-{CLIENT_TRACE_ID}-{CLIENT_SPAN_ID}-01",
            f"00-{CLIENT_TRACE_ID[:-4]}-{CLIENT_SPAN_ID}-01",
            f"00-{'0' * 32}-{CLIENT_SPAN_ID}-01",
            f"00-{CLIENT_TRACE_ID.upper()}-{CLIENT_SPAN_ID}-01",
            f"00-{CLIENT_TRACE_ID}-{CLIENT_SPAN_ID}-01-extra",
        ],
    )
    def test_malformed_header_never_fails_request(self, served, header):
        status, document, headers = served.post(
            "/v1/gadgets", GADGET_BODY, headers={"traceparent": header}
        )
        assert status == 200
        assert document["disposition"] in ("computed", "cache_hit")
        # The response still carries a *valid*, freshly minted context.
        echoed = headers["traceparent"]
        parts = echoed.split("-")
        assert len(parts) == 4 and parts[0] == "00"
        assert parts[1] != CLIENT_TRACE_ID
        assert len(parts[1]) == 32 and len(parts[2]) == 16


class TestTraceTree:
    def test_compute_request_span_tree(self, served):
        with store.using_store("memory"):
            status, _, headers = served.post(
                "/v1/maxis", _maxis_body(),
                headers={"traceparent": CLIENT_TRACEPARENT},
            )
        assert status == 200
        trace_id = headers["traceparent"].split("-")[1]
        assert trace_id == CLIENT_TRACE_ID
        status, tree = served.get_json(f"/v1/traces/{trace_id}")
        assert status == 200
        assert tree["trace_id"] == CLIENT_TRACE_ID
        assert tree["endpoint"] == "POST /v1/maxis"
        assert tree["disposition"] == "computed"
        assert tree["remote_parent_span_id"] == CLIENT_SPAN_ID
        names = [span["name"] for span in tree["spans"]]
        assert names[0] == "request"
        assert "dispatch.queue" in names
        assert "store.lookup" in names
        assert "execute.maxis_solve" in names
        assert "store.write" in names
        # Tree is well-formed: every non-root parent exists.
        ids = {span["span_id"] for span in tree["spans"]}
        for span in tree["spans"][1:]:
            assert span["parent_id"] in ids
        lookup = next(s for s in tree["spans"] if s["name"] == "store.lookup")
        assert lookup["attrs"]["outcome"] == "miss"

    def test_cache_hit_trace_shape(self, served):
        with store.using_store("memory"):
            served.post("/v1/gadgets", GADGET_BODY)
            _, _, headers = served.post("/v1/gadgets", GADGET_BODY)
            trace_id = headers["traceparent"].split("-")[1]
            _, tree = served.get_json(f"/v1/traces/{trace_id}")
        assert tree["disposition"] == "cache_hit"
        lookup = next(s for s in tree["spans"] if s["name"] == "store.lookup")
        assert lookup["attrs"]["outcome"] == "hit"
        names = [span["name"] for span in tree["spans"]]
        assert "execute.gadget_graph" not in names

    def test_store_off_lookup_outcome(self, served):
        _, _, headers = served.post("/v1/gadgets", GADGET_BODY)
        trace_id = headers["traceparent"].split("-")[1]
        _, tree = served.get_json(f"/v1/traces/{trace_id}")
        lookup = next(s for s in tree["spans"] if s["name"] == "store.lookup")
        assert lookup["attrs"]["outcome"] == "off"

    def test_recorder_spans_graft_into_trace_and_trim(self, served):
        recorder = obs.get_recorder()
        with obs.recording():
            _, _, headers = served.post("/v1/maxis", _maxis_body(mode="exact"))
            trace_id = headers["traceparent"].split("-")[1]
            _, tree = served.get_json(f"/v1/traces/{trace_id}")
            names = [span["name"] for span in tree["spans"]]
            # The solver's own recorder spans appear under execute.*.
            assert any(name.startswith("maxis.") for name in names)
            execute = next(
                s for s in tree["spans"] if s["name"] == "execute.maxis_solve"
            )
            grafted = [
                s for s in tree["spans"] if s["name"].startswith("maxis.")
            ]
            by_id = {s["span_id"]: s for s in tree["spans"]}
            for span in grafted:
                parent = span
                while parent["parent_id"] is not None:
                    parent = by_id[parent["parent_id"]]
                    if parent["span_id"] == execute["span_id"]:
                        break
                assert parent["span_id"] == execute["span_id"]
            # Captured spans were trimmed from the process recorder.
            assert not any(
                record.name.startswith("serve.maxis_solve")
                for record in recorder.spans
            )

    def test_trace_listing_and_404(self, served):
        served.get("/health")
        status, listing = served.get_json("/v1/traces")
        assert status == 200
        assert listing["buffer"]["capacity"] >= 1
        assert listing["traces"], "completed request should be retained"
        summary = listing["traces"][0]
        assert {"trace_id", "endpoint", "status", "duration_ms"} <= set(summary)
        status, document = served.get_json(f"/v1/traces/{'ee' * 16}")
        assert status == 404
        assert "unknown trace" in document["error"]


class TestChromeExport:
    def test_byte_deterministic_and_loadable(self, served):
        _, _, headers = served.post(
            "/v1/gadgets", GADGET_BODY,
            headers={"traceparent": CLIENT_TRACEPARENT},
        )
        trace_id = headers["traceparent"].split("-")[1]
        _, first, _ = served.get(f"/v1/traces/{trace_id}?format=chrome")
        _, second, _ = served.get(f"/v1/traces/{trace_id}?format=chrome")
        assert first == second
        document = json.loads(first)
        assert document["displayTimeUnit"] == "ms"
        complete = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert complete[0]["name"] == "request"
        assert all("ts" in e and "dur" in e for e in complete)


class TestCoalescedLinks:
    N = 4

    def test_followers_link_to_leader_trace(self, served, monkeypatch):
        gate_started = threading.Event()
        gate_release = threading.Event()
        real = jobs.JOB_KINDS["gadget_graph"]

        def gated(**kwargs):
            gate_started.set()
            assert gate_release.wait(timeout=30)
            return real(**kwargs)

        monkeypatch.setitem(jobs.JOB_KINDS, "gadget_graph", gated)
        recorder = obs.get_recorder()
        leader_tp = f"00-{'11' * 16}-{'22' * 8}-01"
        follower_tps = [
            f"00-{format(index + 3, '02x') * 16}-{'44' * 8}-01"
            for index in range(self.N - 1)
        ]
        with obs.recording():
            with concurrent.futures.ThreadPoolExecutor(self.N) as pool:
                leader_future = pool.submit(
                    served.post, "/v1/gadgets", GADGET_BODY,
                    headers={"traceparent": leader_tp},
                )
                assert gate_started.wait(timeout=30)
                follower_futures = [
                    pool.submit(
                        served.post, "/v1/gadgets", GADGET_BODY,
                        headers={"traceparent": tp},
                    )
                    for tp in follower_tps
                ]
                deadline = time.monotonic() + 30
                while recorder.counters.get("serve.coalesced", 0) < self.N - 1:
                    assert time.monotonic() < deadline
                    time.sleep(0.01)
                gate_release.set()
                leader_future.result()
                for future in follower_futures:
                    future.result()
        leader_trace_id = "11" * 16
        for tp in follower_tps:
            follower_trace_id = tp.split("-")[1]
            status, tree = served.get_json(f"/v1/traces/{follower_trace_id}")
            assert status == 200
            assert tree["disposition"] == "coalesced"
            assert {
                "trace_id": leader_trace_id,
                "span_id": next(
                    link["span_id"] for link in tree["links"]
                ),
                "relation": "coalesced_with",
            } in tree["links"]
            names = [span["name"] for span in tree["spans"]]
            assert "serve.coalesced_wait" in names
            # Followers never touch the dispatcher queue or the store.
            assert "dispatch.queue" not in names
            assert "store.lookup" not in names
        status, leader_tree = served.get_json(f"/v1/traces/{leader_trace_id}")
        assert status == 200
        assert leader_tree["disposition"] == "computed"


class TestTailSampling:
    def test_errored_request_survives_routine_flood(self):
        from repro.obs.reqtrace import TraceBuffer
        from repro.serve import Application, BackgroundServer

        app = Application(traces=TraceBuffer(capacity=4, slow_ms=10_000.0))
        server = BackgroundServer(app.dispatch).start()
        try:
            from tests.serve.conftest import Client

            client = Client(app, server)
            status, _, headers = client.post(
                "/v1/gadgets", {"construction": "nope"}
            )
            assert status == 400
            bad_trace = headers["traceparent"].split("-")[1]

            def boom(**kwargs):
                raise RuntimeError("solver exploded")

            original = jobs.JOB_KINDS["gadget_graph"]
            jobs.JOB_KINDS["gadget_graph"] = boom
            try:
                status, _, headers = client.post("/v1/gadgets", GADGET_BODY)
            finally:
                jobs.JOB_KINDS["gadget_graph"] = original
            assert status == 500
            errored_trace = headers["traceparent"].split("-")[1]
            for _ in range(20):
                client.get("/health")
            # The 500 is interesting (tail-sampled in); the 400 is routine
            # and may be evicted by the health flood.
            status, tree = client.get_json(f"/v1/traces/{errored_trace}")
            assert status == 200
            assert tree["status"] == 500
            assert "solver exploded" in tree["error"]
            assert bad_trace != errored_trace
        finally:
            server.close()
            app.close()


class TestHealthParity:
    def test_health_metrics_and_manifest_agree_on_provenance(self, served):
        from repro.obs.manifest import run_provenance

        provenance = run_provenance()
        status, health = served.get_json("/health")
        assert status == 200
        assert health["provenance"]["git_sha"] == provenance["git_sha"]
        assert (
            health["provenance"]["python_version"]
            == provenance["python_version"]
        )
        status, body, _ = served.get("/metrics")
        assert status == 200
        text = body.decode()
        assert f'git_sha="{provenance["git_sha"]}"' in text
        assert f'python_version="{provenance["python_version"]}"' in text
