"""``repro serve`` as a subprocess: announce, serve, SIGINT, exit 0."""

import json
import os
import re
import signal
import subprocess
import sys
import urllib.request

import pytest

ANNOUNCE = re.compile(r"\[serve: (http://[^\]]+)\]")


@pytest.fixture
def server_process(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--cache",
            "disk",
            "--cache-dir",
            str(tmp_path / "cache"),
        ],
        env=env,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        line = proc.stderr.readline()
        match = ANNOUNCE.search(line)
        assert match, f"no announce line on stderr: {line!r}"
        yield proc, match.group(1)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


def post(url, path, document):
    request = urllib.request.Request(
        url + path, data=json.dumps(document).encode(), method="POST"
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.loads(response.read())


class TestCliServe:
    def test_serve_lifecycle(self, server_process):
        proc, url = server_process

        with urllib.request.urlopen(url + "/health", timeout=30) as response:
            health = json.loads(response.read())
        assert health["status"] == "ok"
        assert health["cache"] == "disk"

        body = {"construction": "linear", "params": {"ell": 2, "alpha": 1, "t": 2}}
        first = post(url, "/v1/gadgets", body)
        second = post(url, "/v1/gadgets", body)
        assert first["disposition"] == "computed"
        assert second["disposition"] == "cache_hit"
        assert first["result"] == second["result"]

        with urllib.request.urlopen(url + "/metrics", timeout=30) as response:
            exposition = response.read().decode()
        assert "serve_cache_miss_total 1" in exposition
        assert "serve_cache_hit_total 1" in exposition

        proc.send_signal(signal.SIGINT)
        assert proc.wait(timeout=15) == 0
