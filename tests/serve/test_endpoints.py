"""The compute endpoints: payloads, validation, async sweep jobs."""

import time

import pytest

from repro.core import QUADRATIC_CLAIM_NAMES, linear_claim_names
from repro.gadgets import GadgetParameters
from repro.graphs.serialize import graph_from_dict, graph_to_dict
from repro.parallel.jobs import execute_unit

PARAMS = {"ell": 2, "alpha": 1, "t": 3}


def wait_for_job(client, job_id, timeout_s=60):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        status, document = client.get_json(f"/v1/jobs/{job_id}")
        assert status == 200
        if document["status"] in ("done", "failed"):
            return document
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} did not finish in {timeout_s}s")


class TestGadgets:
    def test_linear_gadget_round_trips_to_a_graph(self, served):
        status, document, _ = served.post(
            "/v1/gadgets", {"construction": "linear", "params": PARAMS}
        )
        assert status == 200
        assert document["serve_schema_version"] == 1
        assert document["kind"] == "gadget_graph"
        assert document["codec"] == "graph"
        assert document["disposition"] == "computed"
        assert len(document["key"]) == 64
        from repro.store import get_codec

        graph = graph_from_dict(document["result"])
        expected = execute_unit(
            "gadget_graph", dict(PARAMS, construction="linear", k=None)
        )
        codec = get_codec("graph")
        assert codec.encode(graph) == codec.encode(expected)

    def test_quadratic_gadget(self, served):
        status, document, _ = served.post(
            "/v1/gadgets",
            {"construction": "quadratic", "params": {"ell": 2, "alpha": 1, "t": 2}},
        )
        assert status == 200
        assert len(list(graph_from_dict(document["result"]).nodes())) > 0


class TestClaims:
    def test_linear_claim_verifies(self, served):
        params = GadgetParameters(ell=2, alpha=1, t=3)
        name = linear_claim_names(params)[0]
        status, document, _ = served.post(
            "/v1/claims",
            {"family": "linear", "name": name, "params": PARAMS, "num_samples": 2},
        )
        assert status == 200
        assert document["kind"] == "linear_claim"
        assert document["codec"] == "claim_check"
        assert document["result"]["holds"] is True

    def test_quadratic_claim_verifies(self, served):
        status, document, _ = served.post(
            "/v1/claims",
            {
                "family": "quadratic",
                "name": QUADRATIC_CLAIM_NAMES[0],
                "params": {"ell": 2, "alpha": 1, "t": 2},
                "num_samples": 2,
            },
        )
        assert status == 200
        assert document["kind"] == "quadratic_claim"
        assert document["result"]["holds"] is True

    def test_unknown_claim_name_lists_valid_names(self, served):
        status, document, _ = served.post(
            "/v1/claims", {"family": "linear", "name": "nope", "params": PARAMS}
        )
        assert status == 400
        assert document["error"] == "unknown linear claim name"
        params = GadgetParameters(ell=2, alpha=1, t=3)
        assert document["detail"]["valid"] == list(linear_claim_names(params))


class TestMaxis:
    @pytest.fixture(scope="class")
    def gadget_document(self):
        graph = execute_unit(
            "gadget_graph", dict(PARAMS, construction="linear", k=None)
        )
        return graph_to_dict(graph)

    def test_exact_solve_returns_weight_and_witness(self, served, gadget_document):
        status, document, _ = served.post(
            "/v1/maxis", {"graph": gadget_document, "mode": "exact"}
        )
        assert status == 200
        assert document["kind"] == "maxis_solve"
        result = document["result"]
        assert result["mode"] == "exact"
        assert result["weight"] == 12
        assert len(result["witness"]) == 12

    def test_greedy_solve(self, served, gadget_document):
        status, document, _ = served.post(
            "/v1/maxis", {"graph": gadget_document, "mode": "greedy"}
        )
        assert status == 200
        assert document["result"]["mode"] == "greedy"
        assert document["result"]["weight"] <= 12

    def test_mode_defaults_to_exact(self, served, gadget_document):
        status, document, _ = served.post(
            "/v1/maxis", {"graph": gadget_document}
        )
        assert status == 200
        assert document["result"]["mode"] == "exact"


class TestSweeps:
    def test_sweep_job_lifecycle(self, served):
        status, document, _ = served.post(
            "/v1/sweeps", {"sweep": "theorem2", "max_t": 2, "num_samples": 1}
        )
        assert status == 202
        assert document["status"] in ("queued", "running")
        assert document["units"] == 2  # theorem2 grid at max_t=2: (2,2), (3,2)
        assert document["disposition"] == "submitted"
        job_id = document["job_id"]
        assert document["href"] == f"/v1/jobs/{job_id}"

        finished = wait_for_job(served, job_id)
        assert finished["status"] == "done"
        assert len(finished["result"]) == 2
        report = finished["result"][0]
        assert report["parameters"]["t"] == 2
        assert finished["finished_unix_s"] >= finished["submitted_unix_s"]

    def test_jobs_listing(self, served):
        status, document, _ = served.post(
            "/v1/sweeps", {"sweep": "theorem2", "max_t": 2, "num_samples": 1}
        )
        job_id = document["job_id"]
        status, listing = served.get_json("/v1/jobs")
        assert status == 200
        assert any(job["job_id"] == job_id for job in listing["jobs"])
        wait_for_job(served, job_id)

    def test_unknown_job_is_404(self, served):
        status, document = served.get_json("/v1/jobs/job-999")
        assert status == 404
        assert "unknown job" in document["error"]

    def test_identical_inflight_sweeps_coalesce_onto_one_job(self, served):
        import threading

        # Hold the dispatch queue so the first job is still in flight
        # when the duplicate submission arrives.
        release = threading.Event()
        served.app.dispatcher.submit(lambda: release.wait(timeout=30))
        body = {"sweep": "theorem1", "max_t": 3, "num_samples": 1, "seed": 7}
        status_a, first, _ = served.post("/v1/sweeps", body)
        status_b, second, _ = served.post("/v1/sweeps", body)
        release.set()
        assert status_a == status_b == 202
        assert first["job_id"] == second["job_id"]
        assert second["disposition"] == "coalesced"
        wait_for_job(served, first["job_id"])
        # Once finished the key is released: a resubmission is a new job
        # (and a warm one, if the store is configured).
        _, third, _ = served.post("/v1/sweeps", body)
        assert third["job_id"] != first["job_id"]
        wait_for_job(served, third["job_id"])
