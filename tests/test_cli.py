"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestInfo:
    def test_prints_summary(self, capsys):
        assert main(["info", "--ell", "4", "--t", "3"]) == 0
        out = capsys.readouterr().out
        assert "linear_nodes" in out
        assert "90" in out

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            main(["info", "--ell", "0"])


class TestFigures:
    def test_renders_both_constructions(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Linear construction G" in out
        assert "Quadratic construction F" in out
        assert "A^0" in out


class TestClaims:
    def test_all_hold(self, capsys):
        assert main(["claims", "--ell", "2", "--t", "2", "--samples", "1"]) == 0
        out = capsys.readouterr().out
        assert "Claim 1" in out
        assert "Claim 5" in out

    def test_json_output(self, capsys):
        code = main(
            ["claims", "--ell", "2", "--t", "2", "--samples", "1", "--json"]
        )
        assert code == 0
        parsed = json.loads(capsys.readouterr().out)
        assert all(entry["holds"] for entry in parsed)

    def test_with_quadratic(self, capsys):
        code = main(
            ["claims", "--ell", "2", "--t", "2", "--samples", "2", "--quadratic"]
        )
        assert code == 0
        assert "Claim 6" in capsys.readouterr().out


class TestTheorems:
    def test_theorem1_table(self, capsys):
        assert main(["theorem1", "--max-t", "3", "--samples", "1"]) == 0
        out = capsys.readouterr().out
        assert "toward 1/2" in out

    def test_theorem1_json(self, capsys):
        assert main(["theorem1", "--max-t", "2", "--samples", "1", "--json"]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["gap"]["claims_hold"] is True

    def test_theorem2_table(self, capsys):
        assert main(["theorem2", "--max-t", "2", "--samples", "2"]) == 0
        assert "toward 3/4" in capsys.readouterr().out


class TestSimulate:
    def test_both_sides_consistent(self, capsys):
        assert main(["simulate"]) == 0
        out = capsys.readouterr().out
        assert "intersecting" in out
        assert "disjoint" in out


class TestProtocols:
    def test_table_and_floor(self, capsys):
        assert main(["protocols", "--k", "10", "--t", "2", "--trials", "1"]) == 0
        out = capsys.readouterr().out
        assert "full-reveal" in out
        assert "Theorem 3 floor" in out
        assert "fooling-set bound" in out

    def test_no_fooling_line_for_large_k(self, capsys):
        assert main(["protocols", "--k", "64", "--t", "3", "--trials", "1"]) == 0
        assert "fooling-set" not in capsys.readouterr().out


class TestExport:
    def test_writes_files(self, tmp_path, capsys):
        out_dir = tmp_path / "exports"
        assert (
            main(["export", "--ell", "2", "--t", "2", "--output", str(out_dir)])
            == 0
        )
        assert (out_dir / "linear.dot").exists()
        assert (out_dir / "quadratic.dot").exists()
        assert (out_dir / "linear_fixed.json").exists()

    def test_exported_json_round_trips(self, tmp_path):
        from repro.gadgets import GadgetParameters, LinearConstruction
        from repro.graphs import graph_from_json

        out_dir = tmp_path / "exports"
        main(["export", "--ell", "2", "--t", "2", "--output", str(out_dir)])
        restored = graph_from_json((out_dir / "linear_fixed.json").read_text())
        expected = LinearConstruction(GadgetParameters(ell=2, alpha=1, t=2)).graph
        assert restored == expected


class TestProfile:
    def test_theorem1_profile_prints_span_tree_and_counters(self, capsys):
        code = main(["theorem1", "--max-t", "2", "--samples", "1", "--profile"])
        assert code == 0
        out = capsys.readouterr().out
        assert "PROFILE" in out
        # The profiled run covers the full proof chain: build, sample,
        # solve, check, cut, plus the Theorem 5 simulation phase.
        for name in (
            "experiment.build",
            "experiment.sample",
            "experiment.solve",
            "experiment.check",
            "theorem5.simulate",
        ):
            assert name in out
        assert "congest.messages" in out
        assert "congest.bits" in out

    def test_profile_restores_disabled_state(self, capsys):
        from repro import obs

        main(["theorem1", "--max-t", "2", "--samples", "1", "--profile"])
        capsys.readouterr()
        assert obs.is_enabled() is False

    def test_simulate_profile(self, capsys):
        assert main(["simulate", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "theorem5.simulate" in out
        assert "congest.rounds" in out

    def test_profile_json_then_stats_round_trip(self, tmp_path, capsys):
        events = tmp_path / "events.jsonl"
        code = main(
            [
                "theorem1",
                "--max-t",
                "2",
                "--samples",
                "1",
                "--profile",
                "--profile-json",
                str(events),
            ]
        )
        assert code == 0
        assert "events written to" in capsys.readouterr().out
        assert events.exists()

        assert main(["stats", str(events)]) == 0
        out = capsys.readouterr().out
        assert "Spans" in out
        assert "congest.bits" in out

    def test_profile_json_implies_profile(self, tmp_path, capsys):
        events = tmp_path / "events.jsonl"
        assert main(["simulate", "--profile-json", str(events)]) == 0
        capsys.readouterr()
        assert events.exists()


class TestSimulateCutTraffic:
    def test_profile_prints_per_round_cut_stats(self, capsys):
        assert main(["simulate", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "cut traffic/round" in out
        assert "predicted: <= 2*|cut|*B" in out

    def test_plain_simulate_omits_cut_stats(self, capsys):
        assert main(["simulate"]) == 0
        assert "cut traffic/round" not in capsys.readouterr().out


class TestTelemetry:
    def test_prints_round_histograms_and_bound_table(self, capsys):
        assert main(["telemetry"]) == 0
        out = capsys.readouterr().out
        assert "Per-round CONGEST telemetry" in out
        assert "congest.round_messages" in out
        assert "congest.round_bits" in out
        assert "congest.edge_utilization" in out
        assert "theorem5.cut_round_bits" in out
        assert "Observed cut traffic vs the Theorem 5 ceiling" in out
        assert "yes" in out

    def test_leaves_recorder_disabled(self, capsys):
        from repro import obs

        main(["telemetry"])
        capsys.readouterr()
        assert obs.is_enabled() is False


class TestStatsTolerance:
    def test_stats_warns_on_malformed_lines(self, tmp_path, capsys):
        events = tmp_path / "events.jsonl"
        events.write_text(
            '{"type": "counter", "name": "congest.bits", "value": 9}\n'
            "garbage line\n"
        )
        assert main(["stats", str(events)]) == 0
        out = capsys.readouterr().out
        assert "skipped 1 malformed line(s)" in out
        assert "congest.bits" in out

    def test_stats_on_empty_file(self, tmp_path, capsys):
        events = tmp_path / "events.jsonl"
        events.write_text("")
        assert main(["stats", str(events)]) == 0


class TestBenchCommand:
    def _write_trajectory(self, tmp_path, name, median, sha):
        from tests.test_bench_runner import _trajectory

        path = tmp_path / name
        path.write_text(json.dumps(_trajectory({"a": median}, sha=sha)))
        return path

    def test_compare_ok_exits_zero(self, tmp_path, capsys):
        old = self._write_trajectory(tmp_path, "old.json", 1.0, "old1")
        assert main(["bench", "--compare", str(old), str(old)]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_compare_regression_exits_nonzero(self, tmp_path, capsys):
        old = self._write_trajectory(tmp_path, "old.json", 1.0, "old1")
        new = self._write_trajectory(tmp_path, "new.json", 2.0, "new1")
        assert main(["bench", "--compare", str(old), str(new)]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_compare_warn_only_exits_zero(self, tmp_path, capsys):
        old = self._write_trajectory(tmp_path, "old.json", 1.0, "old1")
        new = self._write_trajectory(tmp_path, "new.json", 2.0, "new1")
        assert main(["bench", "--compare", str(old), str(new), "--warn-only"]) == 0
        assert "REGRESSED" in capsys.readouterr().out

    def test_fast_run_writes_trajectory(self, tmp_path, capsys):
        from benchmarks import runner

        code = main(
            [
                "bench",
                "--fast",
                "--only",
                "construction_build",
                "--out",
                str(tmp_path),
            ]
        )
        assert code == 0
        (path,) = tmp_path.glob("BENCH_*.json")
        trajectory = runner.load_trajectory(path)
        assert trajectory["config"] == {"warmup": 1, "repeats": 3}
        assert set(trajectory["benches"]) == {"construction_build"}


class TestBenchCompareAutoDiscovery:
    def _write_trajectory(self, directory, name, median, sha, age_s=0):
        import os
        import time

        from tests.test_bench_runner import _trajectory

        path = directory / name
        path.write_text(json.dumps(_trajectory({"a": median}, sha=sha)))
        if age_s:
            stamp = time.time() - age_s
            os.utime(path, (stamp, stamp))
        return path

    def test_single_path_discovers_the_newest_baseline(self, tmp_path, capsys):
        self._write_trajectory(tmp_path, "BENCH_old.json", 1.0, "old1", age_s=100)
        new = self._write_trajectory(tmp_path, "BENCH_new.json", 1.0, "new1")
        code = main(
            ["bench", "--compare", str(new), "--out", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "auto-discovered baseline" in out
        assert "BENCH_old.json" in out

    def test_single_path_falls_back_to_the_committed_baseline(
        self, tmp_path, capsys
    ):
        # The only record in its own directory: auto-discovery consults
        # benchmarks/baselines/, so a fresh clone's first run compares
        # against the checked-in seed.
        new = self._write_trajectory(tmp_path, "BENCH_only.json", 1.0, "one")
        code = main(["bench", "--compare", str(new), "--out", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "auto-discovered baseline" in out
        assert "baselines" in out

    def test_single_path_without_any_baseline_is_a_usage_error(
        self, tmp_path, capsys, monkeypatch
    ):
        from benchmarks import runner

        monkeypatch.setattr(
            runner, "BASELINES_DIR", tmp_path / "no-baselines"
        )
        new = self._write_trajectory(tmp_path, "BENCH_only.json", 1.0, "one")
        code = main(["bench", "--compare", str(new), "--out", str(tmp_path)])
        assert code == 2
        assert "no baseline" in capsys.readouterr().err

    def test_three_paths_is_a_usage_error(self, tmp_path, capsys):
        path = self._write_trajectory(tmp_path, "BENCH_x.json", 1.0, "x")
        code = main(["bench", "--compare", str(path), str(path), str(path)])
        assert code == 2
        assert "one" in capsys.readouterr().err


class TestTraceExport:
    def test_profiled_command_writes_chrome_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        code = main(
            [
                "theorem1",
                "--max-t",
                "2",
                "--samples",
                "1",
                "--trace-out",
                str(trace_path),
            ]
        )
        assert code == 0
        assert "Chrome trace written to" in capsys.readouterr().out
        trace = json.loads(trace_path.read_text())
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        phases = {event["ph"] for event in events}
        assert phases == {"M", "X"}
        for event in events:
            assert {"ph", "name", "pid", "tid"} <= set(event)

    def test_trace_out_implies_profile(self, capsys):
        from repro import obs

        assert not obs.is_enabled()
        # No --profile flag: --trace-out alone must still record spans.
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            trace_path = f"{tmp}/trace.json"
            assert main(["simulate", "--trace-out", trace_path]) == 0
            capsys.readouterr()
            trace = json.loads(open(trace_path).read())
        assert any(e["ph"] == "X" for e in trace["traceEvents"])
        assert not obs.is_enabled()

    def test_stats_trace_out_round_trips_jsonl(self, tmp_path, capsys):
        events = tmp_path / "events.jsonl"
        assert main(["simulate", "--profile-json", str(events)]) == 0
        capsys.readouterr()
        trace_path = tmp_path / "replayed.json"
        assert main(["stats", str(events), "--trace-out", str(trace_path)]) == 0
        capsys.readouterr()
        trace = json.loads(trace_path.read_text())
        x_events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert x_events
        # Replaying identical input twice yields identical bytes.
        again = tmp_path / "again.json"
        assert main(["stats", str(events), "--trace-out", str(again)]) == 0
        capsys.readouterr()
        assert again.read_bytes() == trace_path.read_bytes()


class TestTelemetryJson:
    def test_json_output_is_machine_readable(self, capsys):
        from repro.cli import TELEMETRY_SCHEMA_VERSION

        assert main(["telemetry", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert set(data) == {
            "schema_version",
            "seed",
            "metrics",
            "sides",
            "cache",
            "consistent",
        }
        assert data["schema_version"] == TELEMETRY_SCHEMA_VERSION == 1
        assert data["consistent"] is True
        assert set(data["metrics"]) == {
            "congest.round_messages",
            "congest.round_bits",
            "congest.edge_utilization",
            "theorem5.cut_round_bits",
        }
        for side in data["sides"]:
            assert side["within_bound"] is True
            assert side["measured_bits"] <= side["analytic_bit_bound"]

    def test_json_matches_collector_api(self, capsys):
        from repro.cli import telemetry_data

        assert main(["telemetry", "--json", "--seed", "3"]) == 0
        printed = json.loads(capsys.readouterr().out)
        assert printed == telemetry_data(seed=3)


class TestDashboardCommand:
    def test_builds_a_self_contained_report(self, tmp_path, capsys):
        code = main(
            [
                "dashboard",
                "--out",
                str(tmp_path / "dash"),
                "--results",
                str(tmp_path / "results"),
                "--no-telemetry",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "coverage:" in out
        assert "report.html" in out
        html = (tmp_path / "dash" / "report.html").read_text()
        assert "<script" not in html
        assert "Theorem 5" in html


class TestCacheFlags:
    def test_theorem1_output_unchanged_by_memory_cache(self, capsys):
        assert main(["theorem1", "--max-t", "2", "--samples", "1", "--json"]) == 0
        plain = capsys.readouterr().out
        args = ["theorem1", "--max-t", "2", "--samples", "1", "--json"]
        assert main(args + ["--cache", "memory"]) == 0
        assert capsys.readouterr().out == plain

    def test_theorem2_disk_cold_warm_byte_identical(self, tmp_path, capsys):
        args = [
            "theorem2",
            "--max-t",
            "2",
            "--samples",
            "1",
            "--json",
            "--cache",
            "disk",
            "--cache-dir",
            str(tmp_path / "cache"),
        ]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert warm == cold

    def test_cache_flag_leaves_store_unconfigured_after_exit(self):
        from repro.store import get_store

        assert main(["theorem1", "--max-t", "2", "--samples", "1",
                     "--cache", "memory"]) == 0
        assert get_store() is None

    def test_telemetry_prints_cache_section_when_enabled(self, capsys):
        assert main(["telemetry", "--cache", "memory"]) == 0
        out = capsys.readouterr().out
        assert "Result store" in out
        assert "hit rate" in out

    def test_telemetry_omits_cache_section_when_off(self, capsys):
        assert main(["telemetry"]) == 0
        assert "Result store" not in capsys.readouterr().out


class TestCacheCommands:
    def test_warm_then_stats_then_clear(self, tmp_path, capsys):
        root = str(tmp_path / "cache")
        assert main(["cache", "warm", "--cache-dir", root, "--max-t", "2",
                     "--samples", "1"]) == 0
        assert "warmed" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", root]) == 0
        stats_out = capsys.readouterr().out
        assert "TOTAL" in stats_out
        assert "parallel.theorem1_point" in stats_out
        assert main(["cache", "clear", "--cache-dir", root]) == 0
        assert "cleared" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", root]) == 0
        assert "parallel.theorem1_point" not in capsys.readouterr().out

    def test_warmed_cache_serves_the_sweep(self, tmp_path, capsys):
        root = str(tmp_path / "cache")
        assert main(["cache", "warm", "--cache-dir", root, "--max-t", "2",
                     "--samples", "1"]) == 0
        capsys.readouterr()
        args = ["theorem1", "--max-t", "2", "--samples", "1", "--json",
                "--cache", "disk", "--cache-dir", root, "--profile"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "cache.hit" in out
        # The sweep unit itself was served from the warm store.
        assert "parallel.units_cached" in out

    def test_stats_on_missing_root_is_empty_not_an_error(self, tmp_path, capsys):
        assert main(["cache", "stats", "--cache-dir",
                     str(tmp_path / "nowhere")]) == 0
        assert "TOTAL" in capsys.readouterr().out


class TestParser:
    def test_no_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["bogus"])
