"""Tests for finite field arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes import (
    ExtensionField,
    FieldElementError,
    PrimeField,
    factor_prime_power,
    field_of_order,
    find_irreducible_polynomial,
    is_prime,
    is_prime_power,
    next_prime,
)


class TestPrimality:
    @pytest.mark.parametrize("n", [2, 3, 5, 7, 11, 13, 97, 101])
    def test_primes(self, n):
        assert is_prime(n)

    @pytest.mark.parametrize("n", [-1, 0, 1, 4, 6, 9, 15, 91, 100])
    def test_composites(self, n):
        assert not is_prime(n)

    def test_next_prime(self):
        assert next_prime(8) == 11
        assert next_prime(11) == 11
        assert next_prime(1) == 2

    @pytest.mark.parametrize(
        "n,expected",
        [(2, (2, 1)), (4, (2, 2)), (8, (2, 3)), (9, (3, 2)), (27, (3, 3)), (7, (7, 1)), (49, (7, 2))],
    )
    def test_factor_prime_power(self, n, expected):
        assert factor_prime_power(n) == expected

    @pytest.mark.parametrize("n", [1, 6, 12, 15, 100])
    def test_not_prime_power(self, n):
        assert factor_prime_power(n) is None
        assert not is_prime_power(n)


class TestPrimeField:
    def test_rejects_composite(self):
        with pytest.raises(ValueError):
            PrimeField(6)

    def test_add_mod(self):
        field = PrimeField(7)
        assert field.add(5, 4) == 2

    def test_neg(self):
        field = PrimeField(7)
        assert field.neg(3) == 4
        assert field.neg(0) == 0

    def test_sub(self):
        field = PrimeField(7)
        assert field.sub(2, 5) == 4

    def test_mul(self):
        field = PrimeField(7)
        assert field.mul(3, 5) == 1

    def test_inv(self):
        field = PrimeField(11)
        for a in range(1, 11):
            assert field.mul(a, field.inv(a)) == 1

    def test_inv_zero_raises(self):
        with pytest.raises(FieldElementError):
            PrimeField(5).inv(0)

    def test_div(self):
        field = PrimeField(13)
        assert field.mul(field.div(5, 3), 3) == 5

    def test_pow(self):
        field = PrimeField(5)
        assert field.pow(2, 0) == 1
        assert field.pow(2, 4) == 1  # Fermat
        assert field.pow(3, 2) == 4

    def test_pow_negative_exponent(self):
        field = PrimeField(7)
        assert field.pow(3, -1) == field.inv(3)

    def test_out_of_range_element(self):
        field = PrimeField(5)
        with pytest.raises(FieldElementError):
            field.add(5, 0)

    def test_elements(self):
        assert list(PrimeField(3).elements()) == [0, 1, 2]

    def test_sum(self):
        field = PrimeField(5)
        assert field.sum([4, 4, 4]) == 2


class TestIrreduciblePolynomials:
    @pytest.mark.parametrize("p,m", [(2, 2), (2, 3), (2, 4), (3, 2), (5, 2), (2, 5)])
    def test_find_irreducible(self, p, m):
        poly = find_irreducible_polynomial(p, m)
        assert len(poly) == m + 1
        assert poly[-1] == 1
        # No roots in GF(p).
        field = PrimeField(p)
        for x in range(p):
            value, power = 0, 1
            for coefficient in poly:
                value = field.add(value, field.mul(coefficient, power))
                power = field.mul(power, x)
            assert value != 0


class TestExtensionField:
    @pytest.mark.parametrize("p,m", [(2, 2), (2, 3), (3, 2)])
    def test_field_axioms_exhaustive(self, p, m):
        field = ExtensionField(p, m)
        elements = list(field.elements())
        assert len(elements) == p ** m
        for a in elements:
            assert field.add(a, 0) == a
            assert field.mul(a, 1) == a
            assert field.add(a, field.neg(a)) == 0
            if a != 0:
                assert field.mul(a, field.inv(a)) == 1

    def test_gf4_multiplication_closed_and_invertible(self):
        field = ExtensionField(2, 2)
        nonzero = [1, 2, 3]
        products = {field.mul(a, b) for a in nonzero for b in nonzero}
        assert 0 not in products

    def test_distributivity_gf8(self):
        field = ExtensionField(2, 3)
        for a in range(8):
            for b in range(8):
                for c in range(0, 8, 3):
                    left = field.mul(a, field.add(b, c))
                    right = field.add(field.mul(a, b), field.mul(a, c))
                    assert left == right

    def test_inv_zero_raises(self):
        with pytest.raises(FieldElementError):
            ExtensionField(2, 2).inv(0)

    def test_reducible_modulus_rejected(self):
        # x^2 + 1 = (x + 1)^2 over GF(2).
        with pytest.raises(ValueError):
            ExtensionField(2, 2, modulus=[1, 0, 1])

    def test_non_monic_modulus_rejected(self):
        with pytest.raises(ValueError):
            ExtensionField(3, 2, modulus=[1, 0, 2])

    def test_bad_degree_raises(self):
        with pytest.raises(ValueError):
            ExtensionField(2, 0)


class TestFieldOfOrder:
    @pytest.mark.parametrize("q", [2, 3, 4, 5, 7, 8, 9, 11, 16, 25])
    def test_orders(self, q):
        field = field_of_order(q)
        assert field.order == q

    @pytest.mark.parametrize("q", [1, 6, 10, 12])
    def test_non_prime_power_raises(self, q):
        with pytest.raises(ValueError):
            field_of_order(q)


@settings(max_examples=60, deadline=None)
@given(
    q=st.sampled_from([5, 7, 8, 9]),
    data=st.data(),
)
def test_hypothesis_field_axioms(q, data):
    field = field_of_order(q)
    a = data.draw(st.integers(0, q - 1))
    b = data.draw(st.integers(0, q - 1))
    c = data.draw(st.integers(0, q - 1))
    assert field.add(a, b) == field.add(b, a)
    assert field.mul(a, b) == field.mul(b, a)
    assert field.mul(a, field.mul(b, c)) == field.mul(field.mul(a, b), c)
    assert field.mul(a, field.add(b, c)) == field.add(
        field.mul(a, b), field.mul(a, c)
    )
