"""Deeper code tests: RS + Berlekamp–Welch over extension fields."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes import (
    ExtensionField,
    ReedSolomonCode,
    field_of_order,
    hamming_distance,
    solve_linear_system,
)


class TestRSOverExtensionFields:
    @pytest.mark.parametrize("q", [4, 8, 9, 16])
    def test_encode_decode_clean(self, q):
        code = ReedSolomonCode.over_order(q, message_length=2, block_length=q)
        rng = random.Random(q)
        for _ in range(5):
            message = [rng.randrange(q) for _ in range(2)]
            assert code.decode(list(code.encode(message))) == tuple(message)

    @pytest.mark.parametrize("q", [8, 9])
    def test_decode_with_errors(self, q):
        code = ReedSolomonCode.over_order(q, message_length=2, block_length=q)
        rng = random.Random(q + 100)
        for trial in range(8):
            message = [rng.randrange(q) for _ in range(2)]
            word = list(code.encode(message))
            for position in rng.sample(range(q), code.max_correctable_errors):
                word[position] = (word[position] + rng.randrange(1, q)) % q
            assert code.decode(word) == tuple(message)

    @pytest.mark.parametrize("q", [4, 8, 9])
    def test_exhaustive_distance_gf_q(self, q):
        code = ReedSolomonCode.over_order(q, message_length=2, block_length=q)
        words = [
            code.encode(list(message))
            for message in itertools.product(range(q), repeat=2)
        ]
        minimum = min(
            hamming_distance(a, b) for a, b in itertools.combinations(words, 2)
        )
        assert minimum == q - 1  # MDS: M - L + 1

    def test_gf16_field_order(self):
        field = field_of_order(16)
        assert isinstance(field, ExtensionField)
        assert field.order == 16


class TestLinearSystemsOverExtensionFields:
    @pytest.mark.parametrize("q", [4, 9])
    def test_random_consistent_systems(self, q):
        field = field_of_order(q)
        rng = random.Random(q)
        for _ in range(10):
            n = rng.randint(1, 4)
            matrix = [[rng.randrange(q) for _ in range(n)] for _ in range(n)]
            solution = [rng.randrange(q) for _ in range(n)]
            rhs = [
                field.sum([field.mul(matrix[i][j], solution[j]) for j in range(n)])
                for i in range(n)
            ]
            found = solve_linear_system(field, matrix, rhs)
            assert found is not None
            # Verify the found solution satisfies the system (it may
            # differ from `solution` when the matrix is singular).
            for i in range(n):
                lhs = field.sum(
                    [field.mul(matrix[i][j], found[j]) for j in range(n)]
                )
                assert lhs == rhs[i]


@settings(max_examples=25, deadline=None)
@given(
    q=st.sampled_from([8, 9]),
    message=st.data(),
)
def test_hypothesis_extension_field_roundtrip(q, message):
    code = ReedSolomonCode.over_order(q, message_length=3, block_length=q)
    symbols = [message.draw(st.integers(0, q - 1)) for _ in range(3)]
    word = list(code.encode(symbols))
    # Corrupt up to the radius.
    num_errors = message.draw(st.integers(0, code.max_correctable_errors))
    positions = message.draw(
        st.lists(
            st.integers(0, q - 1), min_size=num_errors, max_size=num_errors, unique=True
        )
    )
    for position in positions:
        delta = message.draw(st.integers(1, q - 1))
        word[position] = (word[position] + delta) % q
    assert code.decode(word) == tuple(symbols)
