"""Tests for polynomial arithmetic and linear algebra over finite fields."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes import (
    PrimeField,
    field_of_order,
    lagrange_interpolate,
    poly_add,
    poly_degree,
    poly_divmod,
    poly_eval,
    poly_mul,
    poly_scale,
    poly_trim,
    solve_linear_system,
)

F7 = PrimeField(7)


class TestBasics:
    def test_trim(self):
        assert poly_trim([1, 2, 0, 0]) == [1, 2]
        assert poly_trim([0, 0]) == []

    def test_degree(self):
        assert poly_degree([]) == -1
        assert poly_degree([5]) == 0
        assert poly_degree([0, 0, 3]) == 2

    def test_eval_constant(self):
        assert poly_eval(F7, [4], 3) == 4

    def test_eval_linear(self):
        # 2 + 3x at x = 4 -> 14 mod 7 = 0
        assert poly_eval(F7, [2, 3], 4) == 0

    def test_eval_zero_poly(self):
        assert poly_eval(F7, [], 5) == 0

    def test_add(self):
        assert poly_add(F7, [1, 2], [3, 4, 5]) == [4, 6, 5]

    def test_add_cancels(self):
        assert poly_add(F7, [3, 2], [4, 5]) == []

    def test_scale(self):
        assert poly_scale(F7, [1, 2], 3) == [3, 6]

    def test_scale_by_zero(self):
        assert poly_scale(F7, [1, 2], 0) == []

    def test_mul(self):
        # (1 + x)(1 + x) = 1 + 2x + x^2
        assert poly_mul(F7, [1, 1], [1, 1]) == [1, 2, 1]

    def test_mul_by_zero(self):
        assert poly_mul(F7, [1, 1], []) == []


class TestDivmod:
    def test_exact_division(self):
        product = poly_mul(F7, [1, 1], [2, 3])
        quotient, remainder = poly_divmod(F7, product, [1, 1])
        assert quotient == [2, 3]
        assert remainder == []

    def test_with_remainder(self):
        quotient, remainder = poly_divmod(F7, [1, 0, 1], [1, 1])
        recomposed = poly_add(F7, poly_mul(F7, quotient, [1, 1]), remainder)
        assert recomposed == [1, 0, 1]
        assert poly_degree(remainder) < 1

    def test_divide_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            poly_divmod(F7, [1, 2], [])


class TestInterpolation:
    def test_recovers_quadratic(self):
        coeffs = [3, 0, 5]
        xs = [0, 1, 2]
        ys = [poly_eval(F7, coeffs, x) for x in xs]
        assert lagrange_interpolate(F7, xs, ys) == coeffs

    def test_duplicate_points_raise(self):
        with pytest.raises(ValueError):
            lagrange_interpolate(F7, [1, 1], [2, 3])

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            lagrange_interpolate(F7, [1], [2, 3])

    def test_interpolate_over_extension_field(self):
        field = field_of_order(8)
        coeffs = [5, 3]
        xs = [0, 1, 2]
        ys = [poly_eval(field, coeffs, x) for x in xs]
        assert lagrange_interpolate(field, xs, ys) == coeffs


class TestLinearSystems:
    def test_unique_solution(self):
        # x + y = 3, x - y = 1 over GF(7) -> x = 2, y = 1
        solution = solve_linear_system(F7, [[1, 1], [1, 6]], [3, 1])
        assert solution == [2, 1]

    def test_underdetermined_returns_some_solution(self):
        solution = solve_linear_system(F7, [[1, 1]], [3])
        assert solution is not None
        assert F7.add(solution[0], solution[1]) == 3

    def test_inconsistent_returns_none(self):
        solution = solve_linear_system(F7, [[1, 1], [1, 1]], [1, 2])
        assert solution is None

    def test_identity(self):
        solution = solve_linear_system(F7, [[1, 0], [0, 1]], [4, 5])
        assert solution == [4, 5]


@settings(max_examples=50, deadline=None)
@given(
    a=st.lists(st.integers(0, 6), max_size=4),
    b=st.lists(st.integers(0, 6), max_size=4),
    x=st.integers(0, 6),
)
def test_hypothesis_mul_evaluates_pointwise(a, b, x):
    product = poly_mul(F7, a, b)
    assert poly_eval(F7, product, x) == F7.mul(poly_eval(F7, a, x), poly_eval(F7, b, x))


@settings(max_examples=50, deadline=None)
@given(
    coeffs=st.lists(st.integers(0, 6), min_size=1, max_size=4),
)
def test_hypothesis_interpolation_roundtrip(coeffs):
    coeffs = poly_trim(coeffs)
    xs = list(range(max(1, len(coeffs))))
    ys = [poly_eval(F7, coeffs, x) for x in xs]
    assert lagrange_interpolate(F7, xs, ys) == coeffs
