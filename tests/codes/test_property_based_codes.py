"""Hypothesis property tests for the coding layer.

Two universal statements back every gadget construction in the repo:

* ``GF(p^m)`` really is a field — the axioms hold for every element
  triple, prime and extension fields alike;
* Reed–Solomon really corrects up to ``floor((d - 1) / 2)`` errors —
  encode, corrupt any admissible error pattern, Berlekamp–Welch decode,
  and the original message comes back.

The deterministic unit tests elsewhere pin concrete vectors; here
hypothesis roams the element/message/error space.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes import (
    ExtensionField,
    PrimeField,
    ReedSolomonCode,
    hamming_distance,
)

# One representative per shape: small/large prime, binary and odd-prime
# extensions.  Built once at module load — fields are immutable.
_FIELDS = [
    PrimeField(2),
    PrimeField(5),
    PrimeField(13),
    ExtensionField(2, 4),  # GF(16)
    ExtensionField(3, 2),  # GF(9)
]

_FIELD = st.sampled_from(_FIELDS)


@st.composite
def field_and_elements(draw, count: int):
    """A field together with ``count`` of its elements."""
    field = draw(_FIELD)
    elements = [
        draw(st.integers(min_value=0, max_value=field.order - 1))
        for _ in range(count)
    ]
    return field, elements


class TestFieldAxioms:
    @settings(max_examples=120)
    @given(field_and_elements(3))
    def test_additive_group(self, drawn):
        field, (a, b, c) = drawn
        assert field.add(field.add(a, b), c) == field.add(a, field.add(b, c))
        assert field.add(a, b) == field.add(b, a)
        assert field.add(a, 0) == a
        assert field.add(a, field.neg(a)) == 0

    @settings(max_examples=120)
    @given(field_and_elements(3))
    def test_multiplicative_structure(self, drawn):
        field, (a, b, c) = drawn
        assert field.mul(field.mul(a, b), c) == field.mul(a, field.mul(b, c))
        assert field.mul(a, b) == field.mul(b, a)
        assert field.mul(a, 1) == a
        if a != 0:
            assert field.mul(a, field.inv(a)) == 1

    @settings(max_examples=120)
    @given(field_and_elements(3))
    def test_distributivity(self, drawn):
        field, (a, b, c) = drawn
        assert field.mul(a, field.add(b, c)) == field.add(
            field.mul(a, b), field.mul(a, c)
        )

    @settings(max_examples=60)
    @given(field_and_elements(2))
    def test_subtraction_and_division_invert(self, drawn):
        field, (a, b) = drawn
        assert field.add(field.sub(a, b), b) == a
        if b != 0:
            assert field.mul(field.div(a, b), b) == a

    @settings(max_examples=40)
    @given(field_and_elements(1), st.integers(min_value=0, max_value=12))
    def test_pow_matches_repeated_multiplication(self, drawn, exponent):
        field, (a,) = drawn
        expected = 1
        for _ in range(exponent):
            expected = field.mul(expected, a)
        assert field.pow(a, exponent) == expected


# (q, message length L, block length M) — distances d = M - L + 1 of
# 3, 5, 6, and 7, i.e. correction radii 1..3.
_CODE_SHAPES = [
    (16, 4, 10),
    (13, 3, 9),
    (9, 2, 6),
    (8, 3, 5),
]

_CODES = {shape: ReedSolomonCode.over_order(*shape) for shape in _CODE_SHAPES}


@st.composite
def corrupted_codeword(draw):
    """A code, a message, and the codeword with <= radius corruptions."""
    shape = draw(st.sampled_from(_CODE_SHAPES))
    code = _CODES[shape]
    q = code.field.order
    message = tuple(
        draw(st.integers(min_value=0, max_value=q - 1))
        for _ in range(code.message_length)
    )
    num_errors = draw(
        st.integers(min_value=0, max_value=code.max_correctable_errors)
    )
    positions = draw(
        st.lists(
            st.integers(min_value=0, max_value=code.block_length - 1),
            min_size=num_errors,
            max_size=num_errors,
            unique=True,
        )
    )
    word = list(code.encode(message))
    for position in positions:
        # Any wrong symbol: shift by a nonzero offset mod q.
        offset = draw(st.integers(min_value=1, max_value=q - 1))
        word[position] = (word[position] + offset) % q
    return code, message, tuple(word), len(positions)


class TestReedSolomonRoundTrip:
    @settings(max_examples=80)
    @given(corrupted_codeword())
    def test_decode_recovers_message_within_radius(self, drawn):
        code, message, word, num_errors = drawn
        assert hamming_distance(word, code.encode(message)) == num_errors
        assert code.decode(word) == message

    @settings(max_examples=40)
    @given(st.sampled_from(_CODE_SHAPES), st.integers(min_value=0, max_value=10_000))
    def test_distinct_messages_keep_distance(self, shape, seed):
        """Any two distinct codewords differ in >= d positions (MDS)."""
        code = _CODES[shape]
        rng = random.Random(seed)
        q = code.field.order
        first = tuple(rng.randrange(q) for _ in range(code.message_length))
        second = tuple(rng.randrange(q) for _ in range(code.message_length))
        if first == second:
            return
        distance = hamming_distance(code.encode(first), code.encode(second))
        assert distance >= code.minimum_distance
