"""Tests for the Reed–Solomon code and Berlekamp–Welch decoding."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes import ReedSolomonCode, hamming_distance


class TestConstruction:
    def test_bad_lengths_raise(self):
        with pytest.raises(ValueError):
            ReedSolomonCode.over_order(7, message_length=5, block_length=4)
        with pytest.raises(ValueError):
            ReedSolomonCode.over_order(7, message_length=0, block_length=4)

    def test_block_exceeding_field_raises(self):
        with pytest.raises(ValueError):
            ReedSolomonCode.over_order(5, message_length=2, block_length=6)

    def test_minimum_distance_is_mds(self):
        code = ReedSolomonCode.over_order(7, message_length=3, block_length=6)
        assert code.minimum_distance == 4
        assert code.max_correctable_errors == 1

    def test_theorem4_parameters(self):
        """Theorem 4: (L, M, d) with d = M - L; RS gives M - L + 1."""
        for q, L in [(5, 1), (5, 2), (7, 3), (8, 2), (9, 4)]:
            code = ReedSolomonCode.over_order(q, message_length=L, block_length=q)
            assert code.minimum_distance >= q - L


class TestEncoding:
    def test_encode_length(self):
        code = ReedSolomonCode.over_order(7, 2, 5)
        assert len(code.encode([1, 2])) == 5

    def test_encode_wrong_length_raises(self):
        code = ReedSolomonCode.over_order(7, 2, 5)
        with pytest.raises(ValueError):
            code.encode([1])

    def test_encode_out_of_alphabet_raises(self):
        code = ReedSolomonCode.over_order(5, 2, 4)
        with pytest.raises(Exception):
            code.encode([1, 9])

    def test_zero_message_gives_zero_codeword(self):
        code = ReedSolomonCode.over_order(7, 3, 6)
        assert code.encode([0, 0, 0]) == (0,) * 6

    def test_constant_message(self):
        code = ReedSolomonCode.over_order(7, 2, 5)
        assert code.encode([4, 0]) == (4,) * 5

    def test_injective(self):
        code = ReedSolomonCode.over_order(5, 2, 5)
        words = {code.encode(m) for m in itertools.product(range(5), repeat=2)}
        assert len(words) == 25

    @pytest.mark.parametrize("q,L", [(5, 2), (7, 2), (8, 2), (9, 2)])
    def test_exhaustive_distance(self, q, L):
        code = ReedSolomonCode.over_order(q, L, q)
        words = [code.encode(list(m)) for m in itertools.product(range(q), repeat=L)]
        minimum = min(
            hamming_distance(a, b) for a, b in itertools.combinations(words, 2)
        )
        assert minimum == code.minimum_distance  # MDS codes are tight


class TestDecoding:
    def _corrupt(self, word, positions, field_order, rng):
        word = list(word)
        for position in positions:
            original = word[position]
            replacement = rng.randrange(field_order - 1)
            word[position] = replacement if replacement < original else replacement + 1
        return word

    @pytest.mark.parametrize("seed", range(5))
    def test_decode_clean(self, seed):
        rng = random.Random(seed)
        code = ReedSolomonCode.over_order(11, 3, 9)
        message = [rng.randrange(11) for _ in range(3)]
        assert code.decode(list(code.encode(message))) == tuple(message)

    @pytest.mark.parametrize("seed", range(5))
    def test_decode_with_max_errors(self, seed):
        rng = random.Random(seed + 50)
        code = ReedSolomonCode.over_order(11, 3, 9)  # d = 7, corrects 3
        message = [rng.randrange(11) for _ in range(3)]
        word = code.encode(message)
        positions = rng.sample(range(9), code.max_correctable_errors)
        corrupted = self._corrupt(word, positions, 11, rng)
        assert code.decode(corrupted) == tuple(message)

    def test_decode_single_error_everywhere(self):
        code = ReedSolomonCode.over_order(7, 2, 6)  # corrects 2
        message = [3, 5]
        word = code.encode(message)
        for position in range(6):
            corrupted = list(word)
            corrupted[position] = (corrupted[position] + 1) % 7
            assert code.decode(corrupted) == tuple(message)

    def test_decode_wrong_length_raises(self):
        code = ReedSolomonCode.over_order(7, 2, 6)
        with pytest.raises(ValueError):
            code.decode([0] * 5)

    def test_interpolate_message_from_clean_points(self):
        code = ReedSolomonCode.over_order(7, 3, 7)
        message = [1, 2, 3]
        word = code.encode(message)
        points = [(i, word[i]) for i in range(3)]
        assert code.interpolate_message(points) == tuple(message)

    def test_interpolate_too_few_points_raises(self):
        code = ReedSolomonCode.over_order(7, 3, 7)
        with pytest.raises(ValueError):
            code.interpolate_message([(0, 1)])


class TestHammingDistance:
    def test_equal(self):
        assert hamming_distance([1, 2, 3], [1, 2, 3]) == 0

    def test_counts_positions(self):
        assert hamming_distance([1, 2, 3], [1, 0, 0]) == 2

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            hamming_distance([1], [1, 2])


@settings(max_examples=30, deadline=None)
@given(
    message=st.lists(st.integers(0, 10), min_size=3, max_size=3),
    error_positions=st.sets(st.integers(0, 8), max_size=3),
    data=st.data(),
)
def test_hypothesis_decode_within_radius(message, error_positions, data):
    code = ReedSolomonCode.over_order(11, 3, 9)
    word = list(code.encode(message))
    for position in error_positions:
        delta = data.draw(st.integers(1, 10))
        word[position] = (word[position] + delta) % 11
    if len(error_positions) <= code.max_correctable_errors:
        assert code.decode(word) == tuple(message)
