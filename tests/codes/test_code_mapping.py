"""Tests for code-mappings (Definition 3 / Theorem 4) and the factory."""

import itertools

import pytest

from repro.codes import (
    ExplicitCodeMapping,
    GreedyCodeMapping,
    RSCodeMapping,
    code_mapping_for_parameters,
    digits_to_index,
    exact_minimum_distance_of,
    hamming_distance,
    index_to_digits,
    verify_code_mapping,
)


class TestIndexDigits:
    def test_roundtrip(self):
        for base, length in [(3, 2), (5, 3), (2, 4)]:
            for index in range(base ** length):
                digits = index_to_digits(index, base, length)
                assert digits_to_index(digits, base) == index

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            index_to_digits(9, 3, 2)

    def test_bad_digit_raises(self):
        with pytest.raises(ValueError):
            digits_to_index([3], 3)

    def test_known_values(self):
        assert index_to_digits(5, 3, 2) == (2, 1)  # 5 = 2 + 1*3


class TestRSCodeMapping:
    def test_figure1_parameters(self):
        """ell=2, alpha=1: q=3, k=3, codewords of length 3, distance >= 2."""
        mapping = RSCodeMapping(ell=2, alpha=1)
        assert mapping.alphabet_size == 3
        assert mapping.block_length == 3
        assert mapping.num_codewords == 3
        assert verify_code_mapping(mapping) >= 2

    @pytest.mark.parametrize("ell,alpha", [(2, 1), (3, 1), (4, 1), (2, 2), (3, 2)])
    def test_distance_verified(self, ell, alpha):
        mapping = RSCodeMapping(ell=ell, alpha=alpha)
        assert mapping.num_codewords == (ell + alpha) ** alpha
        assert verify_code_mapping(mapping) >= ell

    def test_non_prime_power_raises(self):
        with pytest.raises(ValueError):
            RSCodeMapping(ell=5, alpha=1)  # q = 6

    def test_codeword_out_of_range_raises(self):
        mapping = RSCodeMapping(ell=2, alpha=1)
        with pytest.raises(ValueError):
            mapping.codeword(3)

    def test_codewords_are_cached_and_stable(self):
        mapping = RSCodeMapping(ell=3, alpha=1)
        assert mapping.codeword(2) is mapping.codeword(2)

    def test_codewords_distinct(self):
        mapping = RSCodeMapping(ell=3, alpha=2)
        words = list(mapping.codewords())
        assert len(set(words)) == len(words)

    def test_bad_parameters_raise(self):
        with pytest.raises(ValueError):
            RSCodeMapping(ell=0, alpha=1)
        with pytest.raises(ValueError):
            RSCodeMapping(ell=2, alpha=0)


class TestGreedyCodeMapping:
    def test_finds_small_code(self):
        mapping = GreedyCodeMapping(
            alphabet_size=3, block_length=3, min_distance=2, target_count=3
        )
        assert mapping.num_codewords >= 3
        assert verify_code_mapping(mapping) >= 2

    def test_non_prime_power_alphabet(self):
        # q = 6 is not a prime power; greedy must still deliver 6 words
        # of length 6 at distance 5.
        mapping = GreedyCodeMapping(
            alphabet_size=6, block_length=6, min_distance=5, target_count=6
        )
        assert verify_code_mapping(mapping) >= 5

    def test_impossible_target_raises(self):
        with pytest.raises(ValueError):
            GreedyCodeMapping(
                alphabet_size=2, block_length=2, min_distance=2, target_count=10
            )

    def test_distance_exceeding_length_raises(self):
        with pytest.raises(ValueError):
            GreedyCodeMapping(
                alphabet_size=2, block_length=2, min_distance=3, target_count=1
            )

    def test_random_mode_for_large_composite_alphabets(self):
        """q = 10, M = 10: the space is 10^10, far past exhaustive reach;
        the seeded random sampler must still deliver a verified code."""
        mapping = GreedyCodeMapping(
            alphabet_size=10, block_length=10, min_distance=9, target_count=10
        )
        assert mapping.num_codewords == 10
        assert verify_code_mapping(mapping) >= 9

    def test_random_mode_is_deterministic(self):
        a = GreedyCodeMapping(10, 10, 9, 5, seed=3)
        b = GreedyCodeMapping(10, 10, 9, 5, seed=3)
        assert list(a.codewords()) == list(b.codewords())

    def test_random_mode_attempt_cap(self):
        # An impossible target trips the attempt cap rather than spinning.
        with pytest.raises(ValueError):
            GreedyCodeMapping(
                alphabet_size=10,
                block_length=10,
                min_distance=10,
                target_count=1000,
                max_attempts=2000,
            )


class TestExplicitCodeMapping:
    def test_computes_distance(self):
        mapping = ExplicitCodeMapping(2, [(0, 0, 0), (1, 1, 1)])
        assert mapping.guaranteed_distance == 3

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            ExplicitCodeMapping(2, [(0, 0), (0, 0)])

    def test_rejects_ragged(self):
        with pytest.raises(ValueError):
            ExplicitCodeMapping(2, [(0, 0), (0,)])

    def test_rejects_out_of_alphabet(self):
        with pytest.raises(ValueError):
            ExplicitCodeMapping(2, [(0, 2)])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ExplicitCodeMapping(2, [])


class TestFactory:
    @pytest.mark.parametrize("ell,alpha", [(2, 1), (3, 1), (4, 1), (2, 2)])
    def test_prime_power_uses_rs(self, ell, alpha):
        mapping = code_mapping_for_parameters(ell, alpha)
        assert isinstance(mapping, RSCodeMapping)

    def test_non_prime_power_uses_greedy(self):
        mapping = code_mapping_for_parameters(5, 1)  # q = 6
        assert isinstance(mapping, GreedyCodeMapping)
        assert mapping.num_codewords == 6
        assert verify_code_mapping(mapping) >= 5

    def test_factory_distance_always_at_least_ell(self):
        for ell, alpha in [(2, 1), (3, 1), (5, 1), (2, 2)]:
            mapping = code_mapping_for_parameters(ell, alpha)
            assert verify_code_mapping(mapping) >= ell


class TestVerification:
    def test_exact_minimum_distance(self):
        words = [(0, 0, 0), (0, 1, 1), (1, 1, 0)]
        assert exact_minimum_distance_of(words) == 2

    def test_single_word(self):
        assert exact_minimum_distance_of([(0, 1)]) == 2

    def test_verify_raises_on_violation(self):
        mapping = ExplicitCodeMapping(2, [(0, 0), (0, 1)])
        mapping.guaranteed_distance = 2  # lie about it
        with pytest.raises(AssertionError):
            verify_code_mapping(mapping)
