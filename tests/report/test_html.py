"""Tests for the HTML renderer and the SVG sparklines."""

import json

import pytest

from repro.report.collect import collect_report
from repro.report.html import build_dashboard, render_report
from repro.report.svg import sparkline_svg


class TestSparkline:
    def test_renders_a_polyline_with_endpoint_dot(self):
        svg = sparkline_svg([1.0, 2.0, 1.5])
        assert svg.startswith("<svg")
        assert "<polyline" in svg and "<circle" in svg

    def test_empty_series_renders_an_empty_frame(self):
        svg = sparkline_svg([])
        assert svg.startswith("<svg") and svg.endswith("</svg>")
        assert "<polyline" not in svg

    def test_flat_series_stays_on_the_midline(self):
        svg = sparkline_svg([3.0, 3.0, 3.0], height=28)
        assert "14.00" in svg

    def test_byte_deterministic(self):
        values = [0.1234567, 0.7654321, 0.5]
        assert sparkline_svg(values) == sparkline_svg(values)


def _model(tmp_path):
    return collect_report(tmp_path, include_telemetry=False)


class TestRenderReport:
    def test_self_contained_html(self, tmp_path):
        html = render_report(_model(tmp_path))
        assert html.startswith("<!DOCTYPE html>")
        assert "<script" not in html
        assert "<link" not in html
        assert "<style>" in html

    def test_matrix_lists_every_statement(self, tmp_path):
        html = render_report(_model(tmp_path))
        for sid in (
            "Theorem 1",
            "Theorem 5",
            "Property 2",
            "Claim 7",
            "Lemma 1",
            "Remark 1",
            "Figure 6",
        ):
            assert sid in html

    def test_escapes_untrusted_manifest_content(self, tmp_path):
        (tmp_path / "evil.json").write_text(
            json.dumps(
                {
                    "schema_version": 3,
                    "name": "<script>alert(1)</script>",
                    "parameters": {},
                    "provenance": {"git_sha": "x", "hostname": "h"},
                    "spans": {},
                }
            )
        )
        html = render_report(_model(tmp_path))
        assert "<script>alert(1)</script>" not in html
        assert "&lt;script&gt;" in html

    def test_render_is_byte_deterministic(self, tmp_path):
        model = _model(tmp_path)
        assert render_report(model) == render_report(model)

    def test_healthy_runs_omit_the_stall_section(self, tmp_path):
        html = render_report(_model(tmp_path))
        assert "Stall watchdog reports" not in html

    def test_no_sweep_serve_degrades_to_an_explicit_no_data_row(self, tmp_path):
        html = render_report(_model(tmp_path))
        assert "Verification service (serve)" in html
        assert "no data" in html
        assert "sweep_serve" in html

    def test_serve_exemplars_render_their_own_table(self, tmp_path):
        model = _model(tmp_path)
        model["serve"] = {
            "git_sha": "abc123",
            "trajectory": "BENCH_abc123.json",
            "parameters": {"requests": 240, "concurrency": 12, "cache": "disk"},
            "gauges": {"serve.p50_ms": 20.5},
            "exemplars": [
                {"endpoint": "POST /v1/maxis", "worst_ms": 812.25},
                {"endpoint": "GET /health", "worst_ms": 3.5},
            ],
        }
        html = render_report(model)
        assert "Slow-request exemplars" in html
        assert "POST /v1/maxis" in html
        assert "<td>812.25</td>" in html

    def test_serve_gauges_render_a_table(self, tmp_path):
        model = _model(tmp_path)
        model["serve"] = {
            "git_sha": "abc123",
            "trajectory": "BENCH_abc123.json",
            "parameters": {"requests": 240, "concurrency": 12, "cache": "disk"},
            "gauges": {
                "serve.p50_ms": 20.5,
                "serve.p99_ms": 33.1,
                "serve.throughput_rps": 540.0,
                "serve.coalesce_rate": 0.39,
                "serve.cold_s": 0.45,
                "serve.warm_s": 0.44,
                "serve.warm_speedup_x": 1.02,
            },
        }
        html = render_report(model)
        assert "Verification service (serve)" in html
        assert "docs/SERVE.md" in html
        assert "540 req/s" in html
        assert "39.0%" in html
        assert "20.50 ms" in html
        assert "1.02×" in html

    def test_stall_reports_render_a_table(self, tmp_path):
        model = _model(tmp_path)
        model["stalls"] = {
            "stalled_units": 1,
            "requeued_units": 1,
            "reports": [
                {
                    "manifest": "theorem2_sweep",
                    "uid": "theorem2/t=3",
                    "worker": 4242,
                    "waited_s": 30.5,
                    "deadline_s": 30.0,
                    "requeued": True,
                }
            ],
        }
        html = render_report(model)
        assert "Stall watchdog reports" in html
        assert "theorem2/t=3" in html
        assert "4242" in html
        assert "1 stalled" in html


class TestBuildDashboard:
    def test_writes_report_html(self, tmp_path):
        result = build_dashboard(
            tmp_path / "out",
            results_dir=tmp_path / "results",
            include_telemetry=False,
        )
        assert result["path"].name == "report.html"
        assert result["path"].exists()
        assert result["unmapped"] == []
        assert result["problems"] == []

    def test_rebuild_is_byte_identical(self, tmp_path):
        kwargs = dict(results_dir=tmp_path / "results", include_telemetry=False)
        first = build_dashboard(tmp_path / "a", **kwargs)
        second = build_dashboard(tmp_path / "b", **kwargs)
        assert first["path"].read_bytes() == second["path"].read_bytes()

    def test_report_with_telemetry_includes_metrics(self, tmp_path):
        result = build_dashboard(
            tmp_path / "out", results_dir=tmp_path / "results", seed=0
        )
        html = result["path"].read_text()
        assert "congest.round_bits" in html
        assert "<script" not in html


class TestDeepProfileSection:
    def _write_profile(self, tmp_path, with_memory=False):
        document = {
            "kind": "deep_profile",
            "schema_version": 1,
            "name": "theorem2",
            "hz": 97.0,
            "sample_stacks": True,
            "total_samples": 7,
            "duration_s": 1.25,
            "merged_profiles": 2,
            "samples": {"span:parallel.run;repro.maxis.exact:solve": 7},
            "critical_path": [
                {
                    "name": "parallel.run",
                    "depth": 0,
                    "duration_s": 1.2,
                    "self_s": 0.3,
                    "share": 1.0,
                    "children": 2,
                }
            ],
            "memory": (
                {
                    "current_bytes": 1000,
                    "peak_bytes": 2_500_000,
                    "span_peak_bytes": {},
                    "top_allocations": [
                        {"site": "maxis/exact.py:1", "size_bytes": 2048, "count": 3}
                    ],
                }
                if with_memory
                else None
            ),
        }
        (tmp_path / "DEEPPROF_theorem2.json").write_text(json.dumps(document))

    def test_embeds_flamegraph_and_critical_path(self, tmp_path):
        self._write_profile(tmp_path)
        html = render_report(_model(tmp_path))
        assert "<h2>Deep profiles</h2>" in html
        assert "<code>theorem2</code>" in html
        # The flamegraph SVG is embedded verbatim and self-contained.
        assert 'xmlns="http://www.w3.org/2000/svg"' in html
        assert "(7 samples)" in html
        assert "<script" not in html
        assert "span (critical path)" in html
        assert "parallel.run" in html
        assert "2 worker profiles merged" in html

    def test_memory_summary_rendered_when_present(self, tmp_path):
        self._write_profile(tmp_path, with_memory=True)
        html = render_report(_model(tmp_path))
        assert "peak 2.50 MB traced" in html
        assert "maxis/exact.py:1" in html

    def test_empty_state_points_at_the_flag(self, tmp_path):
        html = render_report(_model(tmp_path))
        assert "No deep profiles found" in html
        assert "--deep-profile" in html

    def test_dashboard_with_profiles_is_byte_deterministic(self, tmp_path):
        self._write_profile(tmp_path, with_memory=True)
        assert render_report(_model(tmp_path)) == render_report(_model(tmp_path))
