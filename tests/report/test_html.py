"""Tests for the HTML renderer and the SVG sparklines."""

import json

import pytest

from repro.report.collect import collect_report
from repro.report.html import build_dashboard, render_report
from repro.report.svg import sparkline_svg


class TestSparkline:
    def test_renders_a_polyline_with_endpoint_dot(self):
        svg = sparkline_svg([1.0, 2.0, 1.5])
        assert svg.startswith("<svg")
        assert "<polyline" in svg and "<circle" in svg

    def test_empty_series_renders_an_empty_frame(self):
        svg = sparkline_svg([])
        assert svg.startswith("<svg") and svg.endswith("</svg>")
        assert "<polyline" not in svg

    def test_flat_series_stays_on_the_midline(self):
        svg = sparkline_svg([3.0, 3.0, 3.0], height=28)
        assert "14.00" in svg

    def test_byte_deterministic(self):
        values = [0.1234567, 0.7654321, 0.5]
        assert sparkline_svg(values) == sparkline_svg(values)


def _model(tmp_path):
    return collect_report(tmp_path, include_telemetry=False)


class TestRenderReport:
    def test_self_contained_html(self, tmp_path):
        html = render_report(_model(tmp_path))
        assert html.startswith("<!DOCTYPE html>")
        assert "<script" not in html
        assert "<link" not in html
        assert "<style>" in html

    def test_matrix_lists_every_statement(self, tmp_path):
        html = render_report(_model(tmp_path))
        for sid in (
            "Theorem 1",
            "Theorem 5",
            "Property 2",
            "Claim 7",
            "Lemma 1",
            "Remark 1",
            "Figure 6",
        ):
            assert sid in html

    def test_escapes_untrusted_manifest_content(self, tmp_path):
        (tmp_path / "evil.json").write_text(
            json.dumps(
                {
                    "schema_version": 3,
                    "name": "<script>alert(1)</script>",
                    "parameters": {},
                    "provenance": {"git_sha": "x", "hostname": "h"},
                    "spans": {},
                }
            )
        )
        html = render_report(_model(tmp_path))
        assert "<script>alert(1)</script>" not in html
        assert "&lt;script&gt;" in html

    def test_render_is_byte_deterministic(self, tmp_path):
        model = _model(tmp_path)
        assert render_report(model) == render_report(model)

    def test_healthy_runs_omit_the_stall_section(self, tmp_path):
        html = render_report(_model(tmp_path))
        assert "Stall watchdog reports" not in html

    def test_stall_reports_render_a_table(self, tmp_path):
        model = _model(tmp_path)
        model["stalls"] = {
            "stalled_units": 1,
            "requeued_units": 1,
            "reports": [
                {
                    "manifest": "theorem2_sweep",
                    "uid": "theorem2/t=3",
                    "worker": 4242,
                    "waited_s": 30.5,
                    "deadline_s": 30.0,
                    "requeued": True,
                }
            ],
        }
        html = render_report(model)
        assert "Stall watchdog reports" in html
        assert "theorem2/t=3" in html
        assert "4242" in html
        assert "1 stalled" in html


class TestBuildDashboard:
    def test_writes_report_html(self, tmp_path):
        result = build_dashboard(
            tmp_path / "out",
            results_dir=tmp_path / "results",
            include_telemetry=False,
        )
        assert result["path"].name == "report.html"
        assert result["path"].exists()
        assert result["unmapped"] == []
        assert result["problems"] == []

    def test_rebuild_is_byte_identical(self, tmp_path):
        kwargs = dict(results_dir=tmp_path / "results", include_telemetry=False)
        first = build_dashboard(tmp_path / "a", **kwargs)
        second = build_dashboard(tmp_path / "b", **kwargs)
        assert first["path"].read_bytes() == second["path"].read_bytes()

    def test_report_with_telemetry_includes_metrics(self, tmp_path):
        result = build_dashboard(
            tmp_path / "out", results_dir=tmp_path / "results", seed=0
        )
        html = result["path"].read_text()
        assert "congest.round_bits" in html
        assert "<script" not in html
