"""Tests for the report collector: manifests -> coverage rows."""

import json

import pytest

from repro.report import collect, registry


def _manifest(name, git_sha="abc123", spans=None, parameters=None, counters=None):
    return {
        "schema_version": 3,
        "name": name,
        "parameters": parameters or {},
        "provenance": {
            "git_sha": git_sha,
            "hostname": "host",
            "python_version": "3.11.0",
        },
        "counters": counters or {},
        "gauges": {},
        "keyed_counters": {},
        "histograms": {},
        "timers": {},
        "spans": spans or {},
    }


def _write(directory, name, manifest):
    path = directory / f"{name}.json"
    path.write_text(json.dumps(manifest))
    return path


class TestCollectManifests:
    def test_loads_named_manifests(self, tmp_path):
        _write(tmp_path, "theorem5_simulation", _manifest("theorem5_simulation"))
        found = collect.collect_manifests(tmp_path)
        assert set(found) == {"theorem5_simulation"}

    def test_skips_bench_trajectories_and_garbage(self, tmp_path):
        _write(tmp_path, "BENCH_abc", {"kind": "bench_trajectory"})
        (tmp_path / "broken.json").write_text("{not json")
        (tmp_path / "no_schema.json").write_text('{"name": "x"}')
        _write(tmp_path, "good", _manifest("good"))
        assert set(collect.collect_manifests(tmp_path)) == {"good"}

    def test_missing_directory_is_empty(self, tmp_path):
        assert collect.collect_manifests(tmp_path / "nowhere") == {}


class TestManifestWall:
    def test_wall_is_the_largest_span_total(self):
        manifest = _manifest(
            "x",
            spans={
                "outer": {"count": 1, "total_s": 2.5},
                "inner": {"count": 3, "total_s": 1.0},
            },
        )
        assert collect.manifest_wall_s(manifest) == 2.5

    def test_no_spans_means_no_wall(self):
        assert collect.manifest_wall_s(_manifest("x")) is None


class TestCoverageRows:
    def test_all_statements_get_a_row(self, tmp_path):
        rows = collect.coverage_rows({}, "abc123")
        assert len(rows) == len(registry.all_statements())
        assert all(row["status"] == "unverified" for row in rows)

    def test_current_sha_manifest_marks_verified(self, tmp_path):
        manifests = {
            "theorem5_simulation": {
                "path": "p",
                "manifest": _manifest(
                    "theorem5_simulation",
                    git_sha="abc123",
                    parameters={"seed": 11},
                    spans={"run": {"count": 1, "total_s": 0.25}},
                ),
            }
        }
        rows = {
            row["statement_id"]: row
            for row in collect.coverage_rows(manifests, "abc123")
        }
        row = rows["Theorem 5"]
        assert row["status"] == "verified"
        assert row["git_sha"] == "abc123"
        assert row["wall_s"] == 0.25
        assert row["parameters"] == "seed=11"

    def test_old_sha_manifest_marks_stale(self):
        manifests = {
            "theorem5_simulation": {
                "path": "p",
                "manifest": _manifest("theorem5_simulation", git_sha="old000"),
            }
        }
        rows = {
            row["statement_id"]: row
            for row in collect.coverage_rows(manifests, "new111")
        }
        assert rows["Theorem 5"]["status"] == "stale"
        assert rows["Theorem 1"]["status"] == "unverified"

    def test_current_manifest_preferred_over_stale(self):
        manifests = {
            "theorem1_linear_gap": {
                "path": "p1",
                "manifest": _manifest("theorem1_linear_gap", git_sha="old000"),
            },
            "theorem1_all_claims": {
                "path": "p2",
                "manifest": _manifest("theorem1_all_claims", git_sha="new111"),
            },
        }
        rows = {
            row["statement_id"]: row
            for row in collect.coverage_rows(manifests, "new111")
        }
        row = rows["Theorem 1"]
        assert row["status"] == "verified"
        assert row["manifest"] == "theorem1_all_claims"


class TestTrajectoriesAndCache:
    def _trajectory(self, sha, medians):
        return {
            "schema_version": 1,
            "kind": "bench_trajectory",
            "provenance": {"git_sha": sha},
            "benches": {
                name: {"wall": {"median_s": median, "iqr_s": 0.001, "repeats": 5}}
                for name, median in medians.items()
            },
        }

    def test_series_walk_the_timeline_in_order(self, tmp_path):
        import os
        import time

        a = tmp_path / "BENCH_aaa.json"
        a.write_text(json.dumps(self._trajectory("aaa", {"maxis_exact": 0.5})))
        b = tmp_path / "BENCH_bbb.json"
        b.write_text(json.dumps(self._trajectory("bbb", {"maxis_exact": 0.4})))
        now = time.time()
        os.utime(a, (now - 100, now - 100))
        os.utime(b, (now, now))
        result = collect.bench_trajectories(tmp_path)
        assert result["count"] == 2
        assert result["series"]["maxis_exact"] == [0.5, 0.4]
        assert result["shas"] == ["aaa", "bbb"]
        assert result["latest"]["maxis_exact"]["median_s"] == 0.4

    def test_cache_totals_aggregate_counters(self):
        manifests = {
            "a": {
                "path": "p",
                "manifest": _manifest(
                    "a", counters={"cache.hit": 3, "cache.miss": 1}
                ),
            },
            "b": {
                "path": "p",
                "manifest": _manifest("b", counters={"cache.bytes_written": 64}),
            },
        }
        totals = collect.cache_totals(manifests)
        assert totals == {
            "hits": 3,
            "misses": 1,
            "hit_rate": 0.75,
            "bytes_written": 64,
        }

    def test_cache_totals_none_when_idle(self):
        manifests = {"a": {"path": "p", "manifest": _manifest("a")}}
        assert collect.cache_totals(manifests) is None

    def test_stall_totals_none_when_healthy(self):
        manifests = {"a": {"path": "p", "manifest": _manifest("a")}}
        assert collect.stall_totals(manifests) is None

    def test_stall_totals_merge_counters_and_reports(self):
        stalled = dict(
            _manifest(
                "a",
                counters={
                    "parallel.stalled_units": 2,
                    "parallel.requeued_units": 5,
                },
            ),
            stalls=[
                {"uid": "nap/0", "worker": 41, "waited_s": 0.6, "requeued": True}
            ],
        )
        manifests = {
            "a": {"path": "p", "manifest": stalled},
            "b": {"path": "p", "manifest": _manifest("b")},
        }
        totals = collect.stall_totals(manifests)
        assert totals["stalled_units"] == 2
        assert totals["requeued_units"] == 5
        assert totals["reports"] == [
            {
                "uid": "nap/0",
                "worker": 41,
                "waited_s": 0.6,
                "requeued": True,
                "manifest": "a",
            }
        ]

    def test_stall_totals_reports_alone_imply_a_count(self):
        # A manifest written by a run whose recorder was disabled still
        # carries the structured reports; the totals must not read 0.
        stalled = dict(
            _manifest("a"), stalls=[{"uid": "u", "worker": 7, "waited_s": 1.0}]
        )
        manifests = {"a": {"path": "p", "manifest": stalled}}
        assert collect.stall_totals(manifests)["stalled_units"] == 1


def _trajectory(git_sha="abc123", benches=None):
    return {
        "kind": "bench_trajectory",
        "schema_version": 1,
        "provenance": {"git_sha": git_sha},
        "benches": benches or {},
    }


class TestServeSummary:
    SWEEP_SERVE = {
        "parameters": {"requests": 240, "concurrency": 12, "cache": "disk"},
        "gauges": {
            "serve.p50_ms": 20.5,
            "serve.p99_ms": 33.1,
            "serve.throughput_rps": 540.0,
            "serve.coalesce_rate": 0.39,
            "serve.cold_s": 0.45,
            "serve.warm_s": 0.44,
            "serve.warm_speedup_x": 1.02,
            "unrelated.gauge": 7.0,
        },
    }

    def test_none_without_a_trajectory(self, tmp_path):
        assert collect.serve_summary(tmp_path) is None

    def test_none_when_no_trajectory_ran_the_bench(self, tmp_path):
        _write(tmp_path, "BENCH_aaa", _trajectory(benches={"maxis_exact": {}}))
        assert collect.serve_summary(tmp_path) is None

    def test_latest_sweep_serve_gauges_win(self, tmp_path):
        import os

        old = _trajectory(
            git_sha="old",
            benches={"sweep_serve": dict(self.SWEEP_SERVE, gauges={"serve.p50_ms": 99.0})},
        )
        new = _trajectory(git_sha="new", benches={"sweep_serve": self.SWEEP_SERVE})
        old_path = _write(tmp_path, "BENCH_old", old)
        new_path = _write(tmp_path, "BENCH_new", new)
        os.utime(old_path, (1, 1))
        os.utime(new_path, (2, 2))
        summary = collect.serve_summary(tmp_path)
        assert summary["git_sha"] == "new"
        assert summary["trajectory"] == "BENCH_new.json"
        assert summary["parameters"]["requests"] == 240
        assert summary["gauges"]["serve.p50_ms"] == 20.5
        # Only serve.* gauges belong to the panel.
        assert "unrelated.gauge" not in summary["gauges"]

    def test_exemplar_gauges_split_out_of_the_gauge_table(self, tmp_path):
        gauges = dict(
            self.SWEEP_SERVE["gauges"],
            **{
                "serve.exemplar_ms.POST /v1/maxis": 812.25,
                "serve.exemplar_ms.GET /health": 3.5,
            },
        )
        _write(
            tmp_path,
            "BENCH_aaa",
            _trajectory(
                benches={"sweep_serve": dict(self.SWEEP_SERVE, gauges=gauges)}
            ),
        )
        summary = collect.serve_summary(tmp_path)
        assert summary["exemplars"] == [
            {"endpoint": "GET /health", "worst_ms": 3.5},
            {"endpoint": "POST /v1/maxis", "worst_ms": 812.25},
        ]
        assert not any(
            name.startswith("serve.exemplar_ms.") for name in summary["gauges"]
        )

    def test_in_the_report_model(self, tmp_path):
        _write(
            tmp_path,
            "BENCH_aaa",
            _trajectory(benches={"sweep_serve": self.SWEEP_SERVE}),
        )
        data = collect.collect_report(tmp_path, include_telemetry=False)
        assert data["serve"]["gauges"]["serve.throughput_rps"] == 540.0


class TestCollectReport:
    def test_model_shape_without_telemetry(self, tmp_path):
        data = collect.collect_report(tmp_path, include_telemetry=False)
        assert data["telemetry"] is None
        assert data["unmapped"] == []
        assert data["registry_problems"] == []
        assert data["summary"]["total"] == 23
        assert (
            data["summary"]["verified"]
            + data["summary"]["stale"]
            + data["summary"]["unverified"]
            + data["summary"]["unmapped"]
            == 23
        )

    def test_model_is_deterministic(self, tmp_path):
        _write(tmp_path, "theorem4_codes", _manifest("theorem4_codes"))
        first = collect.collect_report(tmp_path, include_telemetry=False)
        second = collect.collect_report(tmp_path, include_telemetry=False)
        assert first == second


def _deepprof_document(name, samples=None, memory=None):
    return {
        "kind": "deep_profile",
        "schema_version": 1,
        "name": name,
        "hz": 97.0,
        "sample_stacks": True,
        "total_samples": sum((samples or {}).values()),
        "duration_s": 1.5,
        "merged_profiles": 2,
        "samples": samples or {},
        "critical_path": [
            {
                "name": "parallel.run",
                "depth": 0,
                "duration_s": 1.4,
                "self_s": 0.2,
                "share": 1.0,
                "children": 3,
            }
        ],
        "memory": memory,
    }


class TestCollectDeepProfiles:
    def _write(self, directory, name, document):
        path = directory / f"DEEPPROF_{name}.json"
        path.write_text(json.dumps(document))
        return path

    def test_collects_documents_name_sorted(self, tmp_path):
        self._write(tmp_path, "zeta", _deepprof_document("zeta"))
        self._write(
            tmp_path, "alpha", _deepprof_document("alpha", {"span:a;m:f": 4})
        )
        profiles = collect.collect_deep_profiles(tmp_path)
        assert [p["name"] for p in profiles] == ["alpha", "zeta"]
        assert profiles[0]["samples"] == {"span:a;m:f": 4}
        assert profiles[0]["critical_path"][0]["name"] == "parallel.run"
        assert profiles[0]["merged_profiles"] == 2

    def test_skips_corrupt_and_wrong_kind_files(self, tmp_path):
        (tmp_path / "DEEPPROF_broken.json").write_text("{nope")
        (tmp_path / "DEEPPROF_wrong.json").write_text('{"kind": "other"}')
        (tmp_path / "DEEPPROF_noschema.json").write_text(
            '{"kind": "deep_profile"}'
        )
        self._write(tmp_path, "good", _deepprof_document("good"))
        assert [
            p["name"] for p in collect.collect_deep_profiles(tmp_path)
        ] == ["good"]

    def test_missing_directory_is_empty(self, tmp_path):
        assert collect.collect_deep_profiles(tmp_path / "nowhere") == []

    def test_manifest_collector_ignores_deepprof_files(self, tmp_path):
        self._write(tmp_path, "run", _deepprof_document("run"))
        _write(tmp_path, "good", _manifest("good"))
        assert set(collect.collect_manifests(tmp_path)) == {"good"}

    def test_report_model_carries_deep_profiles(self, tmp_path):
        self._write(tmp_path, "run", _deepprof_document("run"))
        model = collect.collect_report(tmp_path, include_telemetry=False)
        assert [p["name"] for p in model["deep_profiles"]] == ["run"]
