"""Tests for the paper-statement registry behind the coverage matrix."""

import pytest

from repro.report import registry


class TestShape:
    def test_twenty_three_statements(self):
        # Theorems 1-5, Properties 1-3, Claims 1-7, Lemma 1, Remark 1,
        # Figures 1-6.
        assert len(registry.all_statements()) == 23

    def test_every_statement_of_the_paper_is_present(self):
        ids = set(registry.statement_ids())
        expected = (
            {f"Theorem {i}" for i in range(1, 6)}
            | {f"Property {i}" for i in range(1, 4)}
            | {f"Claim {i}" for i in range(1, 8)}
            | {"Lemma 1", "Remark 1"}
            | {f"Figure {i}" for i in range(1, 7)}
        )
        assert ids == expected

    def test_ids_are_unique(self):
        ids = registry.statement_ids()
        assert len(set(ids)) == len(ids)

    def test_get_statement_round_trip(self):
        for sid in registry.statement_ids():
            assert registry.get_statement(sid).statement_id == sid

    def test_get_statement_unknown_raises(self):
        with pytest.raises(KeyError):
            registry.get_statement("Theorem 99")


class TestCoverageInvariant:
    def test_no_statement_is_unmapped(self):
        assert registry.unmapped_statements() == []

    def test_every_statement_has_an_executable_check(self):
        for statement in registry.all_statements():
            assert statement.checks, statement.statement_id

    def test_every_statement_cites_a_manifest(self):
        # Every row must be verifiable from published run manifests.
        for statement in registry.all_statements():
            assert statement.manifest_names(), statement.statement_id

    def test_registry_is_consistent_with_verifier_annotations(self):
        assert registry.validate() == []

    def test_every_annotated_verifier_appears_in_the_registry(self):
        from repro.core.claims import claim_verifiers

        cited = set()
        for statement in registry.all_statements():
            for check in statement.checks:
                if check.kind == "verifier":
                    cited.add(check.ref.rsplit(".", 1)[-1])
        assert set(claim_verifiers()) == cited

    def test_verifier_refs_resolve_to_real_functions(self):
        import repro.core.claims as claims

        for statement in registry.all_statements():
            for check in statement.checks:
                if check.kind == "verifier":
                    name = check.ref.rsplit(".", 1)[-1]
                    fn = getattr(claims, name)
                    assert statement.statement_id in fn.paper_statements


class TestCheckRef:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            registry.CheckRef("vibe", "repro.core.claims.verify_claim1")

    def test_bench_checks_carry_their_manifest(self):
        for statement in registry.all_statements():
            for check in statement.checks:
                if check.kind == "bench":
                    assert check.manifest == check.ref
