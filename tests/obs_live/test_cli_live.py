"""CLI-level tests for the live telemetry flags.

The fastest real sweep (``theorem2`` at small ``--max-t``/``--samples``)
drives the full path: ``--live-out`` streaming, ``repro stats`` replay,
``--metrics-port`` scraping against a genuinely running process, and
the parent-directory regression for every path-writing flag.
"""

import json
import os
import pathlib
import re
import subprocess
import sys
import time
import urllib.request

import repro
from repro.cli import main

FAST_SWEEP = ["theorem2", "--max-t", "3", "--samples", "10"]


class TestLiveOut:
    def test_live_out_streams_schema_v1(self, tmp_path, capsys):
        path = tmp_path / "live.jsonl"
        assert main(FAST_SWEEP + ["--live-out", str(path)]) == 0
        capsys.readouterr()
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert events[0]["type"] == "live_meta"
        assert events[0]["live_schema_version"] == 1
        assert events[0]["command"] == "theorem2"
        summary = events[-1]
        assert summary["type"] == "live_summary"
        assert summary["units_done"] == summary["units_total"] == 3
        assert summary["stalled_units"] == 0

    def test_live_out_creates_missing_parent_directories(self, tmp_path, capsys):
        path = tmp_path / "runs" / "today" / "live.jsonl"
        assert main(FAST_SWEEP + ["--live-out", str(path)]) == 0
        capsys.readouterr()
        assert path.is_file()

    def test_stats_replays_live_events(self, tmp_path, capsys):
        path = tmp_path / "live.jsonl"
        assert main(FAST_SWEEP + ["--live-out", str(path)]) == 0
        capsys.readouterr()
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Live progress (theorem2)" in out
        assert "Slowest units" in out

    def test_trace_out_creates_missing_parent_directories(self, tmp_path, capsys):
        # Regression guard for the same courtesy on the profiling flags.
        trace = tmp_path / "traces" / "nested" / "trace.json"
        assert main(FAST_SWEEP + ["--trace-out", str(trace)]) == 0
        capsys.readouterr()
        assert trace.is_file()
        assert json.loads(trace.read_text())["traceEvents"]

    def test_profile_json_creates_missing_parent_directories(
        self, tmp_path, capsys
    ):
        events = tmp_path / "profiles" / "nested" / "events.jsonl"
        assert main(FAST_SWEEP + ["--profile-json", str(events)]) == 0
        capsys.readouterr()
        assert events.is_file()


class TestMetricsEndpoint:
    def test_scrape_while_sweep_runs(self, tmp_path):
        """Acceptance: a real 2-worker sweep serves valid Prometheus text.

        Runs the CLI as a subprocess with ``--metrics-port 0``, parses
        the announced URL from stderr, and scrapes ``/metrics`` and
        ``/progress`` while the sweep is still going.
        """
        live_out = tmp_path / "live.jsonl"
        env = dict(os.environ)
        src = str(pathlib.Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = os.pathsep.join(
            part for part in (src, env.get("PYTHONPATH")) if part
        )
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "theorem2",
                "--max-t",
                "4",
                "--samples",
                "40",
                "--workers",
                "2",
                "--live",
                "--live-out",
                str(live_out),
                "--metrics-port",
                "0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            url = None
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                line = process.stderr.readline()
                match = re.search(r"\[live metrics: (http://[^\]]+)\]", line)
                if match:
                    url = match.group(1)
                    break
                if not line and process.poll() is not None:
                    break
            assert url, "CLI never announced a metrics URL on stderr"

            metrics = progress = None
            while process.poll() is None:
                with urllib.request.urlopen(f"{url}/metrics", timeout=5) as resp:
                    text = resp.read().decode("utf-8")
                # congest_round_bits appears first (the simulation phase
                # is profiled before the sweep); keep scraping until the
                # sweep itself has been planned.
                if "congest_round_bits" in text and "parallel_units_planned 4" in text:
                    metrics = text
                    with urllib.request.urlopen(
                        f"{url}/progress", timeout=5
                    ) as resp:
                        progress = json.loads(resp.read().decode("utf-8"))
                    break
                time.sleep(0.05)
            assert metrics is not None, "sweep finished before a full scrape"
            assert metrics.endswith("\n")
            assert "# TYPE" in metrics
            assert "parallel_units_done" in metrics
            assert progress["active"] is True
            assert progress["units_total"] == 4
            assert process.wait(timeout=60) == 0
        finally:
            if process.poll() is None:
                process.kill()
            process.stdout.close()
            process.stderr.close()
        events = [json.loads(line) for line in live_out.read_text().splitlines()]
        assert events[-1]["type"] == "live_summary"

    def test_watchdog_requeue_flag_accepted_serially(self, capsys):
        # --watchdog-requeue on a serial run activates live mode but
        # must never requeue anything: there is no pool to stall.
        assert main(FAST_SWEEP + ["--watchdog-requeue"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 2" in out
