"""Serial vs process-pool live telemetry parity.

Both backends must emit the same ``live.jsonl`` schema — identical
event types with identical field sets — so downstream consumers
(``repro stats``, the dashboard) never need to know which backend
produced a run.  The serial path additionally never arms the watchdog,
so a serial run can never report a stall no matter how slow its units
are.
"""

import json

import pytest

from repro.obs.live import LiveMonitor, using_monitor
from repro.parallel import WorkUnit, run_units
from repro.parallel import backends as backends_module

pytestmark = pytest.mark.skipif(
    backends_module._multiprocessing_context() is None,
    reason="platform lacks a usable multiprocessing context",
)


def probe_units(count=6):
    return [WorkUnit(f"probe/{i}", "probe", {"x": float(i)}) for i in range(count)]


def run_with_live(units, workers, jsonl_path, **monitor_kwargs):
    monitor_kwargs.setdefault("progress_interval_s", 60.0)
    monitor = LiveMonitor(
        command="parity",
        render=False,
        jsonl_path=jsonl_path,
        **monitor_kwargs,
    )
    with using_monitor(monitor):
        results = run_units(units, workers=workers, chunk_size=2)
    monitor.close()
    events = [json.loads(line) for line in jsonl_path.read_text().splitlines()]
    return results, events, monitor


class TestBackendParity:
    def test_same_results_and_same_event_schema(self, tmp_path):
        serial_results, serial_events, _ = run_with_live(
            probe_units(), workers=1, jsonl_path=tmp_path / "serial.jsonl"
        )
        pool_results, pool_events, _ = run_with_live(
            probe_units(), workers=2, jsonl_path=tmp_path / "pool.jsonl"
        )
        assert pool_results == serial_results

        def schema(events):
            """``{event type: frozenset of field names}`` over a stream."""
            shapes = {}
            for event in events:
                shapes.setdefault(event["type"], set()).update(event)
            return {kind: frozenset(fields) for kind, fields in shapes.items()}

        serial_schema = schema(serial_events)
        pool_schema = schema(pool_events)
        assert set(serial_schema) == {"live_meta", "progress", "unit", "live_summary"}
        assert serial_schema == pool_schema

    def test_both_backends_account_every_unit(self, tmp_path):
        for workers, name in ((1, "serial"), (2, "pool")):
            _, events, monitor = run_with_live(
                probe_units(), workers=workers, jsonl_path=tmp_path / f"{name}.jsonl"
            )
            summary = events[-1]
            assert summary["type"] == "live_summary"
            assert summary["units_done"] == 6
            assert summary["units_in_flight"] == 0
            done = [
                e for e in events if e["type"] == "unit" and e["status"] == "done"
            ]
            assert sorted(e["uid"] for e in done) == sorted(
                u.uid for u in probe_units()
            )
            assert monitor.stalled_units == 0

    def test_serial_watchdog_never_fires(self, tmp_path):
        # Units far slower than the deadline: a process-pool run with a
        # dead worker would stall here, but the serial path never arms
        # the watchdog, so slowness alone is not a stall.
        units = [
            WorkUnit(f"nap/{i}", "nap", {"seconds": 0.05, "value": float(i)})
            for i in range(3)
        ]
        results, events, monitor = run_with_live(
            units,
            workers=1,
            jsonl_path=tmp_path / "serial.jsonl",
            watchdog_deadline_s=0.001,
        )
        assert results == [0.0, 1.0, 2.0]
        assert monitor.stalled_units == 0
        assert not [e for e in events if e["type"] == "stall"]
        assert monitor.stall_reports == []
