"""End-to-end stall watchdog tests against a real process pool.

These tests freeze or kill live pool workers, so they are the slowest
part of the live-telemetry suite (a few seconds each).  The watchdog
state machine itself is unit-tested with a fake clock in
``test_live_monitor.py``; here we prove the integrated behaviour the
issue's acceptance criteria name: a SIGSTOP'd worker is recorded as
``parallel.stalled_units >= 1`` plus a structured ``stalls`` entry in
the run manifest, and ``--watchdog-requeue`` degrades to serial with
byte-identical results.
"""

import os
import signal
import threading
import time

import pytest

from repro import obs
from repro.obs.live import LiveMonitor, using_monitor
from repro.obs.manifest import build_manifest
from repro.parallel import WorkUnit, run_units
from repro.parallel import backends as backends_module

pytestmark = pytest.mark.skipif(
    backends_module._multiprocessing_context() is None,
    reason="platform lacks a usable multiprocessing context",
)


def nap_units(count=6, seconds=0.3):
    return [
        WorkUnit(f"nap/{i}", "nap", {"seconds": seconds, "value": float(i)})
        for i in range(count)
    ]


def attack_first_busy_worker(monitor, sig, hit, timeout_s=10.0):
    """From a side thread, signal the first worker seen running a unit."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        workers = monitor.snapshot()["workers"]
        busy = sorted(
            int(pid) for pid, state in workers.items() if state.get("unit")
        )
        if busy:
            try:
                os.kill(busy[0], sig)
            except ProcessLookupError:
                return
            hit.append(busy[0])
            return
        time.sleep(0.02)


class TestStallWatchdog:
    def test_sigstop_is_recorded_and_requeue_matches_serial(self, tmp_path):
        units = nap_units()
        baseline = run_units(units, workers=1)
        monitor = LiveMonitor(
            command="watchdog-test",
            render=False,
            jsonl_path=tmp_path / "live.jsonl",
            watchdog_deadline_s=0.5,
            requeue=True,
            progress_interval_s=60.0,
        )
        hit = []
        attacker = threading.Thread(
            target=attack_first_busy_worker,
            args=(monitor, signal.SIGSTOP, hit),
        )
        with obs.recording() as recorder, using_monitor(monitor):
            attacker.start()
            results = run_units(units, workers=2, chunk_size=1)
            attacker.join()
            manifest = build_manifest("watchdog-test", recorder=recorder)
        monitor.close()

        assert hit, "never observed a busy pool worker to freeze"
        # Requeue degrades to serial and reproduces the serial answer.
        assert results == baseline
        # The stall is visible in all three places the docs promise:
        # the monitor, the recorder counter, and the run manifest.
        assert monitor.stalled_units >= 1
        assert recorder.counters.get("parallel.stalled_units", 0) >= 1
        assert recorder.counters.get("parallel.requeued_units", 0) >= 1
        assert manifest["counters"]["parallel.stalled_units"] >= 1
        stalls = manifest["stalls"]
        assert stalls and stalls[0]["worker"] == hit[0]
        assert stalls[0]["requeued"] is True
        assert stalls[0]["waited_s"] >= 0.5

    def test_sigkill_broken_pool_requeues_to_completion(self, tmp_path):
        units = nap_units()
        baseline = run_units(units, workers=1)
        monitor = LiveMonitor(
            command="watchdog-test",
            render=False,
            watchdog_deadline_s=5.0,
            requeue=True,
            progress_interval_s=60.0,
        )
        hit = []
        attacker = threading.Thread(
            target=attack_first_busy_worker,
            args=(monitor, signal.SIGKILL, hit),
        )
        with using_monitor(monitor):
            attacker.start()
            results = run_units(units, workers=2, chunk_size=1)
            attacker.join()
        monitor.close()
        assert hit, "never observed a busy pool worker to kill"
        assert results == baseline

    def test_broken_pool_without_requeue_names_the_flag(self, tmp_path):
        from concurrent.futures.process import BrokenProcessPool

        monitor = LiveMonitor(
            command="watchdog-test",
            render=False,
            watchdog_deadline_s=5.0,
            requeue=False,
            progress_interval_s=60.0,
        )
        hit = []
        attacker = threading.Thread(
            target=attack_first_busy_worker,
            args=(monitor, signal.SIGKILL, hit),
        )
        with using_monitor(monitor):
            attacker.start()
            with pytest.raises(BrokenProcessPool, match="watchdog-requeue"):
                run_units(nap_units(), workers=2, chunk_size=1)
            attacker.join()
        monitor.close()
        assert hit
