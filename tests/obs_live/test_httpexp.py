"""Tests for the Prometheus renderer and the background HTTP exporter."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.httpexp import (
    MetricsServer,
    render_prometheus,
    sanitize_metric_name,
)
from repro.obs.live import LiveMonitor
from repro.obs.recorder import Recorder


def fresh_recorder():
    recorder = Recorder()
    recorder.enabled = True
    return recorder


def parse_exposition(text):
    """``{metric_line_name: value}`` for every sample line, with checks.

    Asserts the structural rules of the text exposition format: every
    non-comment line is ``name{labels} value``, every ``# TYPE`` names
    a type the format defines, and the text ends with a newline.
    """
    assert text.endswith("\n")
    samples = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            assert parts[1] == "TYPE"
            assert parts[3] in ("counter", "gauge", "summary", "histogram")
            continue
        name_part, _, value = line.rpartition(" ")
        assert name_part, line
        float(value)  # must parse
        samples[name_part] = value
    return samples


class TestSanitize:
    def test_dots_become_underscores(self):
        assert sanitize_metric_name("congest.round_bits") == "congest_round_bits"

    def test_leading_digit_prefixed(self):
        assert sanitize_metric_name("5xx.count") == "_5xx_count"

    def test_valid_names_unchanged(self):
        assert sanitize_metric_name("already_fine:yes") == "already_fine:yes"


class TestRenderPrometheus:
    def test_counters_get_total_suffix(self):
        recorder = fresh_recorder()
        recorder.incr("congest.messages", 7)
        samples = parse_exposition(render_prometheus(recorder=recorder))
        assert samples["congest_messages_total"] == "7"

    def test_gauges_pass_through(self):
        recorder = fresh_recorder()
        recorder.gauge("cache.speedup_x", 3.5)
        samples = parse_exposition(render_prometheus(recorder=recorder))
        assert samples["cache_speedup_x"] == "3.5"

    def test_histogram_summary_quantiles(self):
        recorder = fresh_recorder()
        for value in (1.0, 2.0, 3.0, 4.0):
            recorder.observe("congest.round_bits", value)
        text = render_prometheus(recorder=recorder)
        samples = parse_exposition(text)
        assert 'congest_round_bits{quantile="0.5"}' in samples
        assert 'congest_round_bits{quantile="0.99"}' in samples
        assert samples["congest_round_bits_count"] == "4"
        assert samples["congest_round_bits_sum"] == "10"

    def test_timers_get_seconds_suffix(self):
        recorder = fresh_recorder()
        with recorder.time("cache.lookup"):
            pass
        samples = parse_exposition(render_prometheus(recorder=recorder))
        assert "cache_lookup_seconds_count" in samples

    def test_keyed_counters_are_labeled_and_capped(self):
        from repro.obs import httpexp

        recorder = fresh_recorder()
        for index in range(httpexp.MAX_KEYED_SERIES + 10):
            recorder.incr_keyed("congest.edge_bits", f"edge-{index:03d}", index + 1)
        text = render_prometheus(recorder=recorder)
        labeled = [
            line
            for line in text.splitlines()
            if line.startswith("congest_edge_bits_total{")
        ]
        # The cap, plus one marker series carrying the dropped count.
        assert len(labeled) == httpexp.MAX_KEYED_SERIES + 1
        # Largest-valued keys survive the cap.
        assert 'key="edge-059"' in text
        assert 'congest_edge_bits_total{key="_truncated"} 10' in text

    def test_truncation_marker_counts_every_dropped_key(self):
        from repro.obs import httpexp

        recorder = fresh_recorder()
        for index in range(httpexp.MAX_KEYED_SERIES * 2):
            recorder.incr_keyed("big.bucket", f"k{index:03d}", index + 1)
        samples = parse_exposition(render_prometheus(recorder=recorder))
        assert samples['big_bucket_total{key="_truncated"}'] == str(
            httpexp.MAX_KEYED_SERIES
        )

    def test_no_truncation_marker_at_or_under_the_cap(self):
        from repro.obs import httpexp

        recorder = fresh_recorder()
        for index in range(httpexp.MAX_KEYED_SERIES):
            recorder.incr_keyed("at.cap", f"k{index:03d}")
        recorder.incr_keyed("under.cap", "only")
        text = render_prometheus(recorder=recorder)
        assert "_truncated" not in text
        assert (
            len([l for l in text.splitlines() if l.startswith("at_cap_total{")])
            == httpexp.MAX_KEYED_SERIES
        )

    def test_empty_recorder_renders_build_info_only(self):
        text = render_prometheus(recorder=fresh_recorder())
        samples = parse_exposition(text)
        assert all(name.startswith("repro_build_info") for name in samples)

    def test_label_values_escaped(self):
        recorder = fresh_recorder()
        recorder.incr_keyed("weird.keys", 'a"b\\c\nd')
        text = render_prometheus(recorder=recorder)
        assert '\\"' in text and "\\\\" in text and "\\n" in text

    def test_build_info_always_present(self):
        samples = parse_exposition(render_prometheus(recorder=fresh_recorder()))
        build = [name for name in samples if name.startswith("repro_build_info")]
        assert len(build) == 1

    def test_monitor_gauges_included(self):
        monitor = LiveMonitor(command="t")
        monitor.sweep_started(5)
        monitor.note_cached(2)
        samples = parse_exposition(
            render_prometheus(recorder=fresh_recorder(), monitor=monitor)
        )
        assert samples["parallel_units_planned"] == "5"
        assert samples["parallel_units_done"] == "2"
        assert samples["parallel_units_cached"] == "2"
        monitor.close()

    def test_without_monitor_no_progress_gauges(self):
        text = render_prometheus(recorder=fresh_recorder(), monitor=None)
        assert "parallel_units_planned" not in text


def fetch(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.headers, response.read().decode("utf-8")


class TestMetricsServer:
    @pytest.fixture()
    def server(self):
        recorder = fresh_recorder()
        recorder.incr("congest.messages", 3)
        monitor = LiveMonitor(command="serve-test")
        monitor.sweep_started(2)
        server = MetricsServer(port=0, recorder=recorder, monitor=monitor)
        yield server
        server.close()
        monitor.close()

    def test_ephemeral_port_resolved(self, server):
        assert server.port > 0
        assert server.url == f"http://127.0.0.1:{server.port}"

    def test_metrics_endpoint(self, server):
        status, headers, body = fetch(f"{server.url}/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "version=0.0.4" in headers["Content-Type"]
        samples = parse_exposition(body)
        assert samples["congest_messages_total"] == "3"
        assert samples["parallel_units_planned"] == "2"

    def test_progress_endpoint(self, server):
        status, headers, body = fetch(f"{server.url}/progress")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        document = json.loads(body)
        assert document["active"] is True
        assert document["live_schema_version"] == 1
        assert document["units_total"] == 2
        assert document["stalls"] == []

    def test_health_endpoint(self, server):
        status, _, body = fetch(f"{server.url}/health")
        assert status == 200
        document = json.loads(body)
        assert document["status"] == "ok"
        assert document["uptime_s"] >= 0

    def test_unknown_path_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(f"{server.url}/nope")
        assert excinfo.value.code == 404

    def test_progress_inactive_without_monitor(self):
        server = MetricsServer(port=0, recorder=fresh_recorder(), monitor=None)
        try:
            _, _, body = fetch(f"{server.url}/progress")
            assert json.loads(body) == {
                "active": False,
                "live_schema_version": 1,
            }
        finally:
            server.close()

    def test_close_releases_port(self):
        server = MetricsServer(port=0, recorder=fresh_recorder())
        url = server.url
        server.close()
        with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
            fetch(f"{url}/health")
