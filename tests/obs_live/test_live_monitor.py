"""Unit tests for the LiveMonitor state machine and the live.jsonl sink."""

import json
import threading

import pytest

from repro.obs.live import (
    LIVE_SCHEMA_VERSION,
    LiveMonitor,
    get_monitor,
    serial_worker_id,
    using_monitor,
)


def quiet_monitor(**kwargs):
    """A monitor with no renderer/ticker noise unless asked for."""
    kwargs.setdefault("render", False)
    return LiveMonitor(command=kwargs.pop("command", "test"), **kwargs)


class TestProgressState:
    def test_sweep_and_unit_lifecycle(self):
        monitor = quiet_monitor()
        monitor.sweep_started(3)
        monitor.note_cached(1)
        monitor.unit_started("u/1", worker=111)
        snap = monitor.snapshot()
        assert snap["units_total"] == 3
        assert snap["units_done"] == 1  # the cached unit
        assert snap["units_cached"] == 1
        assert snap["units_in_flight"] == 1
        assert snap["workers"]["111"]["unit"] == "u/1"
        monitor.unit_finished("u/1", worker=111, duration_s=0.5)
        snap = monitor.snapshot()
        assert snap["units_done"] == 2
        assert snap["units_in_flight"] == 0
        assert snap["workers"]["111"]["unit"] is None
        monitor.close()

    def test_sweep_started_accumulates(self):
        monitor = quiet_monitor()
        monitor.sweep_started(2)
        monitor.sweep_started(3)
        assert monitor.snapshot()["units_total"] == 5
        monitor.close()

    def test_ema_and_peak(self):
        monitor = quiet_monitor()
        monitor.unit_finished("a", worker=1, duration_s=1.0)
        assert monitor.unit_ema_s == pytest.approx(1.0)
        monitor.unit_finished("b", worker=1, duration_s=2.0)
        # alpha = 0.3: 0.3*2.0 + 0.7*1.0
        assert monitor.unit_ema_s == pytest.approx(1.3)
        assert monitor.unit_peak_s == pytest.approx(2.0)
        monitor.unit_finished("c", worker=1, duration_s=0.1)
        assert monitor.unit_peak_s == pytest.approx(2.0)  # peak holds
        monitor.close()

    def test_requeued_units_counted(self):
        monitor = quiet_monitor()
        monitor.sweep_started(1)
        monitor.unit_finished("a", worker=1, duration_s=0.1, requeued=True)
        snap = monitor.snapshot()
        assert snap["units_requeued"] == 1
        assert snap["units_done"] == 1
        monitor.close()

    def test_handle_event_dispatch(self):
        monitor = quiet_monitor()
        monitor.handle_event({"type": "heartbeat", "worker": 7})
        monitor.handle_event({"type": "unit_start", "uid": "x", "worker": 7})
        monitor.handle_event(
            {"type": "unit_done", "uid": "x", "worker": 7, "duration_s": 0.25}
        )
        monitor.handle_event({"type": "from_the_future", "worker": 7})  # ignored
        snap = monitor.snapshot()
        assert snap["units_done"] == 1
        assert "7" in snap["workers"]
        monitor.close()

    def test_progress_gauges_shape(self):
        monitor = quiet_monitor()
        monitor.sweep_started(2)
        monitor.unit_finished("a", worker=1, duration_s=0.5)
        gauges = monitor.progress_gauges()
        assert gauges["parallel_units_planned"] == 2.0
        assert gauges["parallel_units_done"] == 1.0
        assert gauges["parallel_unit_ema_seconds"] == pytest.approx(0.5)
        assert gauges["parallel_stalled_units"] == 0.0
        monitor.close()


class TestWatchdog:
    def test_never_fires_unarmed(self):
        clock = FakeClock()
        monitor = quiet_monitor(watchdog_deadline_s=0.1, clock=clock)
        monitor.unit_started("u", worker=5)
        clock.advance(10.0)
        assert monitor.poll_watchdog() == []
        assert monitor.stalled_units == 0
        monitor.close()

    def test_flags_lapsed_worker_once(self):
        clock = FakeClock()
        monitor = quiet_monitor(watchdog_deadline_s=1.0, clock=clock)
        monitor.arm_watchdog()
        monitor.unit_started("u", worker=5)
        clock.advance(0.5)
        assert monitor.poll_watchdog() == []
        clock.advance(1.0)
        reports = monitor.poll_watchdog()
        assert [r["uid"] for r in reports] == ["u"]
        assert reports[0]["worker"] == 5
        assert reports[0]["waited_s"] >= 1.0
        # Same incident is not double-counted.
        clock.advance(5.0)
        assert monitor.poll_watchdog() == []
        assert monitor.stalled_units == 1
        monitor.close()

    def test_heartbeat_clears_stall_flag(self):
        clock = FakeClock()
        monitor = quiet_monitor(watchdog_deadline_s=1.0, clock=clock)
        monitor.arm_watchdog()
        monitor.unit_started("u", worker=5)
        clock.advance(2.0)
        assert len(monitor.poll_watchdog()) == 1
        monitor.heartbeat(5)  # SIGCONT'd worker recovers
        clock.advance(2.0)
        # It can stall again, as a fresh incident.
        assert len(monitor.poll_watchdog()) == 1
        assert monitor.stalled_units == 2
        monitor.close()

    def test_idle_worker_never_stalls(self):
        clock = FakeClock()
        monitor = quiet_monitor(watchdog_deadline_s=1.0, clock=clock)
        monitor.arm_watchdog()
        monitor.heartbeat(5)  # alive but with nothing in flight
        clock.advance(100.0)
        assert monitor.poll_watchdog() == []
        monitor.close()

    def test_mark_requeued(self):
        clock = FakeClock()
        monitor = quiet_monitor(watchdog_deadline_s=1.0, clock=clock)
        monitor.arm_watchdog()
        monitor.unit_started("u", worker=5)
        clock.advance(2.0)
        monitor.poll_watchdog()
        monitor.mark_requeued(["u"])
        assert monitor.stall_reports[0]["requeued"] is True
        monitor.close()


class FakeClock:
    """A manually advanced monotonic clock for watchdog tests."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestJsonlStream:
    def test_schema_v1_event_stream(self, tmp_path):
        path = tmp_path / "live.jsonl"
        monitor = quiet_monitor(jsonl_path=path, progress_interval_s=60.0)
        monitor.sweep_started(1)
        monitor.unit_started("u", worker=9)
        monitor.unit_finished("u", worker=9, duration_s=0.125)
        monitor.close()
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert events[0] == {
            "type": "live_meta",
            "live_schema_version": LIVE_SCHEMA_VERSION,
            "command": "test",
        }
        assert events[-1]["type"] == "live_summary"
        assert events[-1]["units_done"] == 1
        kinds = [e["type"] for e in events]
        assert "unit" in kinds and "progress" in kinds
        started = next(e for e in events if e["type"] == "unit")
        assert started["status"] == "started"
        assert started["duration_s"] is None
        done = [e for e in events if e["type"] == "unit"][1]
        assert done["status"] == "done"
        assert done["duration_s"] == pytest.approx(0.125)

    def test_creates_missing_parent_directories(self, tmp_path):
        path = tmp_path / "deeply" / "nested" / "live.jsonl"
        monitor = quiet_monitor(jsonl_path=path)
        monitor.close()
        assert path.is_file()

    def test_appends_across_monitors(self, tmp_path):
        path = tmp_path / "live.jsonl"
        for _ in range(2):
            quiet_monitor(jsonl_path=path, progress_interval_s=60.0).close()
        metas = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if json.loads(line)["type"] == "live_meta"
        ]
        assert len(metas) == 2  # append mode: the first run survives

    def test_stall_events_streamed(self, tmp_path):
        path = tmp_path / "live.jsonl"
        clock = FakeClock()
        monitor = quiet_monitor(
            jsonl_path=path,
            watchdog_deadline_s=1.0,
            clock=clock,
            progress_interval_s=60.0,
        )
        monitor.arm_watchdog()
        monitor.unit_started("u", worker=3)
        clock.advance(2.0)
        monitor.poll_watchdog()
        monitor.close()
        events = [json.loads(line) for line in path.read_text().splitlines()]
        stalls = [e for e in events if e["type"] == "stall"]
        assert len(stalls) == 1
        assert stalls[0]["uid"] == "u"
        assert stalls[0]["deadline_s"] == 1.0


class TestAmbientMonitor:
    def test_default_is_none(self):
        assert get_monitor() is None

    def test_using_monitor_installs_and_restores(self):
        monitor = quiet_monitor()
        with using_monitor(monitor) as installed:
            assert installed is monitor
            assert get_monitor() is monitor
        assert get_monitor() is None
        monitor.close()

    def test_accepts_none(self):
        with using_monitor(None):
            assert get_monitor() is None

    def test_hard_reset_clears_ambient_monitor(self):
        from repro import obs

        monitor = quiet_monitor()
        with using_monitor(monitor):
            obs.get_recorder().hard_reset()
            assert get_monitor() is None
        monitor.close()

    def test_serial_worker_id_is_pid(self):
        import os

        assert serial_worker_id() == os.getpid()


class TestRenderer:
    def test_status_line_content(self):
        monitor = quiet_monitor()
        monitor.sweep_started(4)
        monitor.unit_finished("a", worker=1, duration_s=0.5)
        line = monitor._status_line(monitor.snapshot())
        assert "[test] 1/4 units" in line
        assert "STALLED" not in line
        monitor.close()

    def test_render_writes_in_place(self):
        import io

        stream = io.StringIO()
        monitor = LiveMonitor(command="r", render=True, stream=stream)
        monitor.sweep_started(1)
        monitor.close()
        output = stream.getvalue()
        assert output.startswith("\r\x1b[2K")
        assert output.endswith("\n")  # final render adds the newline

    def test_threaded_event_storm_is_consistent(self):
        monitor = quiet_monitor()
        monitor.sweep_started(200)

        def pump(base):
            for i in range(50):
                uid = f"u/{base}/{i}"
                monitor.unit_started(uid, worker=base)
                monitor.unit_finished(uid, worker=base, duration_s=0.001)

        threads = [threading.Thread(target=pump, args=(n,)) for n in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = monitor.snapshot()
        assert snap["units_done"] == 200
        assert snap["units_in_flight"] == 0
        monitor.close()
