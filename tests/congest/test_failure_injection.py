"""Failure injection: crash semantics and algorithm robustness."""

import pytest

from repro.congest import (
    CongestNetwork,
    FloodBroadcast,
    FullGraphCollection,
    NodeAlgorithm,
)
from repro.graphs import WeightedGraph, clique, cycle_graph, path_graph


class _Chatter(NodeAlgorithm):
    """Every node broadcasts a counter each round, forever."""

    def initialize(self, ctx):
        ctx.broadcast(0, size_bits=ctx.id_bits)

    def on_round(self, ctx, inbox):
        ctx.broadcast(ctx.round_number % 2, size_bits=ctx.id_bits)


class TestCrashSemantics:
    def test_immediate_crash_drops_queued_messages(self):
        graph = clique(["a", "b"])
        net = CongestNetwork(graph, _Chatter, bandwidth_multiplier=2)
        net._initialize()
        net.crash("a")
        stats = net.run_round()
        # Only b's initial message survives ('a' receives it, though halted).
        assert stats.messages <= 1
        assert "a" in net.crashed_nodes

    def test_crashed_node_receives_nothing(self):
        graph = clique(["a", "b"])
        received = []

        class Recorder(NodeAlgorithm):
            def initialize(self, ctx):
                ctx.broadcast(1, size_bits=1)

            def on_round(self, ctx, inbox):
                received.extend((ctx.node_id, m.payload) for m in inbox)

        net = CongestNetwork(graph, Recorder, bandwidth_multiplier=2)
        net._initialize()
        net.crash("b")
        net.run_round()
        assert all(node != "b" for node, _ in received)

    def test_scheduled_crash(self):
        graph = cycle_graph(list(range(5)))
        net = CongestNetwork(graph, _Chatter, bandwidth_multiplier=2)
        net.crash(0, at_round=3)
        for _ in range(2):
            net.run_round()
        assert 0 not in net.crashed_nodes
        net.run_round()
        assert 0 in net.crashed_nodes

    def test_crash_unknown_node_rejected(self):
        net = CongestNetwork(clique(["a", "b"]), _Chatter)
        with pytest.raises(KeyError):
            net.crash("zz")

    def test_crash_in_the_past_rejected(self):
        net = CongestNetwork(clique(["a", "b"]), _Chatter, bandwidth_multiplier=2)
        net.run_round()
        with pytest.raises(ValueError):
            net.crash("a", at_round=1)

    def test_crashed_node_output_stays(self):
        graph = clique(["a", "b"])
        net = CongestNetwork(graph, _Chatter, bandwidth_multiplier=2)
        net._initialize()
        net.crash("a")
        assert net.outputs()["a"] is None


class TestAlgorithmRobustness:
    def test_flood_survives_off_path_crash(self):
        """Broadcast completes if the crash doesn't disconnect survivors."""
        # Star plus chord: crashing a leaf leaves everyone else reachable.
        graph = WeightedGraph(
            edges=[("s", "a"), ("s", "b"), ("s", "c"), ("a", "b")]
        )
        net = CongestNetwork(
            graph, lambda: FloodBroadcast("s", value=9), bandwidth_multiplier=2
        )
        net.crash("c", at_round=1)
        net.run_until_quiescent()
        outputs = net.outputs()
        assert outputs["a"] == outputs["b"] == 9

    def test_flood_blocked_by_cut_vertex_crash(self):
        """Crashing the only relay starves the far side — and we can see it."""
        graph = path_graph(["s", "relay", "far"])
        net = CongestNetwork(
            graph, lambda: FloodBroadcast("s", value=5), bandwidth_multiplier=2
        )
        net.crash("relay", at_round=1)
        net.run_until_quiescent()
        assert net.outputs()["far"] is None

    def test_collection_partial_knowledge_after_crash(self):
        """A crashed node's facts still spread if already in flight."""
        graph = path_graph(["a", "b", "c"])
        net = CongestNetwork(graph, FullGraphCollection, bandwidth_multiplier=3)
        # Let a couple of rounds run, then kill the middle node.
        net.run_round()
        net.run_round()
        net.crash("b")
        net.run_until_quiescent(max_rounds=1000)
        # 'a' knows at least itself and the a-b edge; no crash-induced error.
        collected = net.algorithms["a"].reconstruct_graph()
        assert collected.has_node("a")
