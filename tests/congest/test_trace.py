"""Tests for the execution trace tooling."""

import random

import pytest

from repro.congest import (
    BFSTree,
    CongestNetwork,
    ExecutionTrace,
    FloodBroadcast,
    LubyMIS,
)
from repro.graphs import clique, path_graph, random_graph


class TestTraceAccounting:
    def test_totals_match_network(self):
        graph = random_graph(12, 0.4, rng=random.Random(1))
        net = CongestNetwork(graph, LubyMIS, bandwidth_multiplier=2, seed=1)
        trace = ExecutionTrace(net)
        trace.run()
        assert trace.total_bits == net.total_bits
        assert len(trace.entries) == net.rounds_executed

    def test_peak_round_bits(self):
        graph = clique(list(range(6)))
        net = CongestNetwork(graph, LubyMIS, bandwidth_multiplier=2, seed=2)
        trace = ExecutionTrace(net)
        trace.run()
        assert trace.peak_round_bits == max(e.bits for e in trace.entries)

    def test_empty_trace_peak_is_zero(self):
        graph = clique(["a"])
        net = CongestNetwork(graph, LubyMIS, bandwidth_multiplier=2)
        trace = ExecutionTrace(net)
        assert trace.peak_round_bits == 0

    def test_halt_rounds_recorded(self):
        graph = clique(list(range(4)))
        net = CongestNetwork(graph, LubyMIS, bandwidth_multiplier=2, seed=3)
        trace = ExecutionTrace(net)
        trace.run()
        for node in graph.nodes():
            assert trace.halt_round_of(node) is not None
        assert trace.halt_round_of("stranger") is None

    def test_edge_traffic_recorded(self):
        graph = path_graph(["a", "b"])
        net = CongestNetwork(
            graph, lambda: FloodBroadcast("a", value=1), bandwidth_multiplier=2
        )
        trace = ExecutionTrace(net, record_edges=True)
        trace.run(quiescent=True)
        first = trace.entries[0]
        assert first.edge_traffic.get(("a", "b"), 0) > 0

    def test_quiescent_mode_finalizes(self):
        graph = path_graph(list(range(5)))
        net = CongestNetwork(graph, lambda: BFSTree(0), bandwidth_multiplier=2)
        trace = ExecutionTrace(net)
        trace.run(quiescent=True)
        assert net.outputs()[4][0] == 4

    def test_max_rounds_enforced(self):
        from repro.congest import NodeAlgorithm

        class Forever(NodeAlgorithm):
            def on_round(self, ctx, inbox):
                ctx.broadcast(1, size_bits=1)

        net = CongestNetwork(clique(["a", "b"]), Forever, bandwidth_multiplier=2)
        trace = ExecutionTrace(net)
        with pytest.raises(RuntimeError):
            trace.run(max_rounds=5)


class TestRendering:
    def test_render_contains_rounds(self):
        graph = clique(list(range(4)))
        net = CongestNetwork(graph, LubyMIS, bandwidth_multiplier=2, seed=4)
        trace = ExecutionTrace(net)
        trace.run()
        text = trace.render()
        assert "Execution trace" in text
        assert "round" in text

    def test_render_truncation(self):
        graph = path_graph(list(range(12)))
        net = CongestNetwork(
            graph, lambda: BFSTree(0), bandwidth_multiplier=2
        )
        trace = ExecutionTrace(net)
        trace.run(quiescent=True)
        text = trace.render(max_rows=2)
        assert "more rounds" in text
