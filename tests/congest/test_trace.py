"""Tests for the execution trace tooling."""

import random

import pytest

from repro.congest import (
    BFSTree,
    CongestNetwork,
    ExecutionTrace,
    FloodBroadcast,
    LubyMIS,
)
from repro.graphs import clique, path_graph, random_graph


class TestTraceAccounting:
    def test_totals_match_network(self):
        graph = random_graph(12, 0.4, rng=random.Random(1))
        net = CongestNetwork(graph, LubyMIS, bandwidth_multiplier=2, seed=1)
        trace = ExecutionTrace(net)
        trace.run()
        assert trace.total_bits == net.total_bits
        assert len(trace.entries) == net.rounds_executed

    def test_peak_round_bits(self):
        graph = clique(list(range(6)))
        net = CongestNetwork(graph, LubyMIS, bandwidth_multiplier=2, seed=2)
        trace = ExecutionTrace(net)
        trace.run()
        assert trace.peak_round_bits == max(e.bits for e in trace.entries)

    def test_empty_trace_peak_is_zero(self):
        graph = clique(["a"])
        net = CongestNetwork(graph, LubyMIS, bandwidth_multiplier=2)
        trace = ExecutionTrace(net)
        assert trace.peak_round_bits == 0

    def test_halt_rounds_recorded(self):
        graph = clique(list(range(4)))
        net = CongestNetwork(graph, LubyMIS, bandwidth_multiplier=2, seed=3)
        trace = ExecutionTrace(net)
        trace.run()
        for node in graph.nodes():
            assert trace.halt_round_of(node) is not None
        assert trace.halt_round_of("stranger") is None

    def test_edge_traffic_recorded(self):
        graph = path_graph(["a", "b"])
        net = CongestNetwork(
            graph, lambda: FloodBroadcast("a", value=1), bandwidth_multiplier=2
        )
        trace = ExecutionTrace(net, record_edges=True)
        trace.run(quiescent=True)
        first = trace.entries[0]
        assert first.edge_traffic.get(("a", "b"), 0) > 0

    def test_quiescent_mode_finalizes(self):
        graph = path_graph(list(range(5)))
        net = CongestNetwork(graph, lambda: BFSTree(0), bandwidth_multiplier=2)
        trace = ExecutionTrace(net)
        trace.run(quiescent=True)
        assert net.outputs()[4][0] == 4

    def test_max_rounds_enforced(self):
        from repro.congest import NodeAlgorithm

        class Forever(NodeAlgorithm):
            def on_round(self, ctx, inbox):
                ctx.broadcast(1, size_bits=1)

        net = CongestNetwork(clique(["a", "b"]), Forever, bandwidth_multiplier=2)
        trace = ExecutionTrace(net)
        with pytest.raises(RuntimeError):
            trace.run(max_rounds=5)


class TestQuiescentEarlyExit:
    def test_quiescent_stops_when_no_messages_in_flight(self):
        graph = path_graph(list(range(5)))
        net = CongestNetwork(
            graph, lambda: FloodBroadcast(0, value=7), bandwidth_multiplier=2
        )
        trace = ExecutionTrace(net)
        rounds = trace.run(quiescent=True)
        # Flooding a 5-path quiesces in ~diameter rounds; without the
        # early exit the run would hit max_rounds and raise.
        assert rounds < 10
        assert len(trace.entries) == rounds

    def test_quiescent_finalizes_unhalted_nodes(self):
        graph = path_graph(list(range(4)))
        net = CongestNetwork(
            graph, lambda: FloodBroadcast(0, value=3), bandwidth_multiplier=2
        )
        trace = ExecutionTrace(net)
        trace.run(quiescent=True)
        assert net.all_halted()
        assert all(value == 3 for value in net.outputs().values())


class TestEdgeTrafficMatrices:
    def test_each_entry_holds_only_its_rounds_traffic(self):
        graph = path_graph(["a", "b", "c"])
        net = CongestNetwork(
            graph, lambda: FloodBroadcast("a", value=1), bandwidth_multiplier=2
        )
        trace = ExecutionTrace(net, record_edges=True)
        trace.run(quiescent=True)
        first, second = trace.entries[0], trace.entries[1]
        # Round 1 delivers only a's initial send; b relays in round 2.
        assert set(first.edge_traffic) == {("a", "b")}
        assert ("b", "c") in second.edge_traffic
        assert ("a", "b") not in second.edge_traffic

    def test_totals_match_per_round_bits(self):
        graph = clique(list(range(5)))
        net = CongestNetwork(graph, LubyMIS, bandwidth_multiplier=2, seed=9)
        trace = ExecutionTrace(net, record_edges=True)
        trace.run()
        for entry in trace.entries:
            assert sum(entry.edge_traffic.values()) == entry.bits

    def test_log_entries_before_attach_are_not_charged(self):
        graph = path_graph(["a", "b", "c"])
        net = CongestNetwork(
            graph, lambda: FloodBroadcast("a", value=1), bandwidth_multiplier=2
        )
        net.message_log_enabled = True
        net.run_round()  # round 1 happens before the trace attaches
        trace = ExecutionTrace(net, record_edges=True)
        trace.run(quiescent=True)
        assert all(
            ("a", "b") not in entry.edge_traffic or entry.round_number != 1
            for entry in trace.entries
        )
        # The trace consumed exactly the suffix of the log it observed.
        assert trace._log_cursor == len(net.message_log)


class TestObservability:
    def test_counters_and_spans_recorded_when_enabled(self):
        from repro import obs

        graph = clique(list(range(4)))
        net_factory = lambda: CongestNetwork(
            graph, LubyMIS, bandwidth_multiplier=2, seed=5
        )
        with obs.recording() as recorder:
            trace = ExecutionTrace(net_factory())
            trace.run()
        assert recorder.counters["congest.rounds"] == len(trace.entries)
        assert recorder.counters["congest.messages"] > 0
        assert recorder.counters["congest.bits"] == trace.total_bits
        names = {span.name for span in recorder.spans}
        assert "congest.trace.run" in names
        assert "congest.trace.round" in names
        assert recorder.keyed_counters["congest.edge_bits"]

    def test_disabled_recorder_stays_empty(self):
        from repro import obs

        recorder = obs.get_recorder()
        recorder.reset()
        graph = clique(list(range(4)))
        net = CongestNetwork(graph, LubyMIS, bandwidth_multiplier=2, seed=5)
        ExecutionTrace(net).run()
        assert recorder.spans == []
        assert recorder.counters == {}


class TestRendering:
    def test_render_contains_rounds(self):
        graph = clique(list(range(4)))
        net = CongestNetwork(graph, LubyMIS, bandwidth_multiplier=2, seed=4)
        trace = ExecutionTrace(net)
        trace.run()
        text = trace.render()
        assert "Execution trace" in text
        assert "round" in text

    def test_render_truncation(self):
        graph = path_graph(list(range(12)))
        net = CongestNetwork(
            graph, lambda: BFSTree(0), bandwidth_multiplier=2
        )
        trace = ExecutionTrace(net)
        trace.run(quiescent=True)
        text = trace.render(max_rows=2)
        assert "more rounds" in text


class TestTelemetry:
    def _trace(self, seed=5):
        graph = clique(list(range(5)))
        net = CongestNetwork(graph, LubyMIS, bandwidth_multiplier=2, seed=seed)
        trace = ExecutionTrace(net)
        trace.run()
        return trace

    def test_round_histograms_match_entries(self):
        trace = self._trace()
        histograms = trace.round_histograms()
        assert set(histograms) == {"messages_per_round", "bits_per_round"}
        assert histograms["messages_per_round"].count == len(trace.entries)
        assert histograms["bits_per_round"].sum == trace.total_bits
        assert histograms["messages_per_round"].max == max(
            entry.messages for entry in trace.entries
        )

    def test_render_telemetry_table(self):
        text = self._trace().render_telemetry()
        assert "Per-round telemetry" in text
        assert "messages_per_round" in text
        assert "bits_per_round" in text

    def test_network_round_histograms_when_enabled(self):
        from repro import obs

        graph = clique(list(range(5)))
        with obs.recording() as recorder:
            net = CongestNetwork(graph, LubyMIS, bandwidth_multiplier=2, seed=5)
            trace = ExecutionTrace(net)
            trace.run()
        messages = recorder.histograms["congest.round_messages"]
        bits = recorder.histograms["congest.round_bits"]
        assert messages.count == len(trace.entries)
        assert bits.sum == trace.total_bits
        # Utilization is one sample per busy edge-direction per round,
        # each a fraction of the per-direction bandwidth budget.
        utilization = recorder.histograms["congest.edge_utilization"]
        assert utilization.count > 0
        assert 0.0 < utilization.min and utilization.max <= 1.0

    def test_round_histograms_work_with_recorder_disabled(self):
        from repro import obs

        recorder = obs.get_recorder()
        recorder.reset()
        trace = self._trace()
        assert recorder.histograms == {}
        assert trace.round_histograms()["messages_per_round"].count == len(
            trace.entries
        )
