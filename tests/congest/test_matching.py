"""Tests for distributed maximal matching."""

import random

import pytest

from repro.congest import (
    CongestNetwork,
    MaximalMatching,
    is_maximal_matching,
    matching_from_outputs,
)
from repro.graphs import WeightedGraph, clique, cycle_graph, path_graph, random_graph


def _run(graph, seed=0):
    net = CongestNetwork(graph, MaximalMatching, bandwidth_multiplier=2, seed=seed)
    net.run(max_rounds=10_000)
    return matching_from_outputs(net.outputs()), net


class TestMaximalMatching:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_graphs(self, seed):
        graph = random_graph(22, 0.3, rng=random.Random(seed))
        edges, _ = _run(graph, seed=seed)
        assert is_maximal_matching(graph, edges)

    def test_single_edge(self):
        graph = WeightedGraph(edges=[("a", "b")])
        # n = 2 gives 1-bit ids; the tagged value needs 3 bits of budget.
        net = CongestNetwork(graph, MaximalMatching, bandwidth_multiplier=3, seed=0)
        net.run(max_rounds=100)
        assert matching_from_outputs(net.outputs()) == {frozenset(("a", "b"))}

    def test_partners_are_symmetric(self):
        graph = random_graph(16, 0.35, rng=random.Random(7))
        _, net = _run(graph, seed=3)
        outputs = net.outputs()
        for node, partner in outputs.items():
            if partner is not None:
                assert outputs[partner] == node

    def test_path_matches_pairs(self):
        graph = path_graph(list(range(6)))
        edges, _ = _run(graph, seed=1)
        assert is_maximal_matching(graph, edges)
        assert len(edges) >= 2

    def test_clique_perfect_or_near(self):
        graph = clique(list(range(8)))
        edges, _ = _run(graph, seed=2)
        assert len(edges) == 4  # even clique: perfect matching

    def test_odd_cycle_leaves_one_unmatched(self):
        graph = cycle_graph(list(range(7)))
        edges, net = _run(graph, seed=4)
        assert is_maximal_matching(graph, edges)
        unmatched = [v for v, p in net.outputs().items() if p is None]
        assert len(unmatched) == 7 - 2 * len(edges)

    def test_edgeless_everyone_unmatched(self):
        graph = WeightedGraph(nodes=list(range(4)))
        edges, net = _run(graph)
        assert edges == set()
        assert all(p is None for p in net.outputs().values())


class TestTwoApproxVertexCoverViaMatching:
    @pytest.mark.parametrize("seed", range(3))
    def test_endpoints_form_a_cover(self, seed):
        from repro.maxis import is_vertex_cover, min_weight_vertex_cover

        graph = random_graph(18, 0.3, rng=random.Random(seed + 10))
        edges, _ = _run(graph, seed=seed)
        cover = {node for edge in edges for node in edge}
        assert is_vertex_cover(graph, cover)
        assert len(cover) <= 2 * len(min_weight_vertex_cover(graph))


class TestIsMaximalMatchingOracle:
    def test_rejects_non_edges(self):
        graph = WeightedGraph(nodes=["a", "b"])
        assert not is_maximal_matching(graph, {frozenset(("a", "b"))})

    def test_rejects_overlapping_edges(self):
        graph = path_graph(["a", "b", "c"])
        assert not is_maximal_matching(
            graph, {frozenset(("a", "b")), frozenset(("b", "c"))}
        )

    def test_rejects_non_maximal(self):
        graph = path_graph(["a", "b", "c", "d"])
        assert not is_maximal_matching(graph, set())
