"""Tests for distributed (Delta + 1)-coloring."""

import random

import pytest

from repro.congest import CongestNetwork, DeltaPlusOneColoring, is_proper_coloring
from repro.graphs import WeightedGraph, clique, cycle_graph, path_graph, random_graph


def _run_coloring(graph, seed=0):
    net = CongestNetwork(
        graph, DeltaPlusOneColoring, bandwidth_multiplier=2, seed=seed
    )
    net.run(max_rounds=5000)
    return net.outputs()


class TestColoring:
    @pytest.mark.parametrize("seed", range(5))
    def test_proper_on_random_graphs(self, seed):
        graph = random_graph(22, 0.3, rng=random.Random(seed))
        colors = _run_coloring(graph, seed=seed)
        assert is_proper_coloring(graph, colors)

    @pytest.mark.parametrize("seed", range(5))
    def test_at_most_delta_plus_one_colors(self, seed):
        graph = random_graph(20, 0.4, rng=random.Random(seed + 50))
        colors = _run_coloring(graph, seed=seed)
        assert max(colors.values()) <= graph.max_degree()

    def test_clique_uses_all_colors(self):
        graph = clique(list(range(6)))
        colors = _run_coloring(graph, seed=1)
        assert sorted(colors.values()) == list(range(6))

    def test_path_uses_few_colors(self):
        graph = path_graph(list(range(10)))
        colors = _run_coloring(graph, seed=2)
        assert is_proper_coloring(graph, colors)
        assert max(colors.values()) <= 2

    def test_cycle(self):
        graph = cycle_graph(list(range(9)))
        colors = _run_coloring(graph, seed=3)
        assert is_proper_coloring(graph, colors)

    def test_edgeless_all_color_zero(self):
        graph = WeightedGraph(nodes=list(range(5)))
        colors = _run_coloring(graph)
        assert set(colors.values()) == {0}

    def test_broadcast_only_compatible(self):
        graph = random_graph(14, 0.3, rng=random.Random(9))
        net = CongestNetwork(
            graph,
            DeltaPlusOneColoring,
            bandwidth_multiplier=2,
            seed=4,
            broadcast_only=True,
        )
        net.run(max_rounds=5000)
        assert is_proper_coloring(graph, net.outputs())


class TestIsProperColoring:
    def test_detects_monochromatic_edge(self):
        graph = WeightedGraph(edges=[("a", "b")])
        assert not is_proper_coloring(graph, {"a": 1, "b": 1})

    def test_detects_missing_color(self):
        graph = WeightedGraph(nodes=["a", "b"])
        assert not is_proper_coloring(graph, {"a": 1, "b": None})

    def test_accepts_proper(self):
        graph = WeightedGraph(edges=[("a", "b")])
        assert is_proper_coloring(graph, {"a": 0, "b": 1})
