"""Tests for convergecast, triangle detection, and the broadcast-only model."""

import random

import pytest

from repro.congest import (
    BroadcastOnlyViolationError,
    CongestNetwork,
    ConvergecastAggregate,
    LubyMIS,
    NodeAlgorithm,
    TriangleDetection,
    has_triangle_through,
)
from repro.graphs import clique, cycle_graph, path_graph, random_graph, star_graph


class TestConvergecast:
    @pytest.mark.parametrize("seed", [0, 3, 4, 5])
    def test_sum_of_weights(self, seed):
        graph = random_graph(18, 0.35, rng=random.Random(seed), weight_range=(1, 9))
        assert graph.is_connected()  # seeds chosen to give connected samples
        root = graph.node_list()[0]
        net = CongestNetwork(
            graph, lambda: ConvergecastAggregate(root), bandwidth_multiplier=3
        )
        net.run_until_quiescent()
        roots = [(v, value) for v, (is_root, value) in net.outputs().items() if is_root]
        assert roots == [(root, graph.total_weight())]

    def test_min_aggregate(self):
        graph = path_graph(list(range(8)))
        for i in range(8):
            graph.set_weight(i, 10 - i)
        net = CongestNetwork(
            graph,
            lambda: ConvergecastAggregate(0, combine=min),
            bandwidth_multiplier=3,
        )
        net.run_until_quiescent()
        assert net.outputs()[0] == (True, 3)

    def test_max_with_custom_value(self):
        graph = cycle_graph(list(range(6)))
        net = CongestNetwork(
            graph,
            lambda: ConvergecastAggregate(
                0, value_of=lambda ctx: ctx.degree, combine=max
            ),
            bandwidth_multiplier=3,
        )
        net.run_until_quiescent()
        assert net.outputs()[0] == (True, 2)

    def test_count_nodes(self):
        graph = star_graph("hub", [f"l{i}" for i in range(5)])
        net = CongestNetwork(
            graph,
            lambda: ConvergecastAggregate("hub", value_of=lambda ctx: 1),
            bandwidth_multiplier=3,
        )
        net.run_until_quiescent()
        assert net.outputs()["hub"] == (True, 6)

    def test_single_node(self):
        graph = clique(["only"])
        net = CongestNetwork(
            graph, lambda: ConvergecastAggregate("only"), bandwidth_multiplier=3
        )
        net.run_until_quiescent()
        assert net.outputs()["only"] == (True, 1)


class TestTriangleDetection:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_centralized_oracle(self, seed):
        graph = random_graph(14, 0.35, rng=random.Random(seed + 40))
        net = CongestNetwork(graph, TriangleDetection, bandwidth_multiplier=1)
        net.run_until_quiescent()
        for node, found in net.outputs().items():
            assert found == has_triangle_through(graph, node)

    def test_triangle_free(self):
        graph = cycle_graph(list(range(7)))
        net = CongestNetwork(graph, TriangleDetection)
        net.run_until_quiescent()
        assert not any(net.outputs().values())

    def test_clique_everyone_detects(self):
        graph = clique(list(range(5)))
        net = CongestNetwork(graph, TriangleDetection)
        net.run_until_quiescent()
        assert all(net.outputs().values())

    def test_rounds_bounded_by_max_degree(self):
        graph = random_graph(12, 0.4, rng=random.Random(99))
        net = CongestNetwork(graph, TriangleDetection)
        rounds = net.run_until_quiescent()
        assert rounds <= graph.max_degree() + 2


class TestBroadcastOnlyModel:
    def test_triangle_detection_works_broadcast_only(self):
        graph = clique(list(range(4)))
        net = CongestNetwork(
            graph, TriangleDetection, broadcast_only=True
        )
        net.run_until_quiescent()
        assert all(net.outputs().values())

    def test_point_to_point_rejected(self):
        class Whisper(NodeAlgorithm):
            def initialize(self, ctx):
                ctx.send(ctx.neighbors[0], 1, size_bits=1)

            def on_round(self, ctx, inbox):
                ctx.halt()

        net = CongestNetwork(clique(["a", "b"]), Whisper, broadcast_only=True)
        with pytest.raises(BroadcastOnlyViolationError):
            net.run()

    def test_luby_is_broadcast_compatible(self):
        """Luby only ever broadcasts, so it runs in the broadcast model."""
        graph = random_graph(15, 0.3, rng=random.Random(3))
        net = CongestNetwork(
            graph, LubyMIS, bandwidth_multiplier=2, seed=4, broadcast_only=True
        )
        net.run(max_rounds=2000)
        mis = {v for v, joined in net.outputs().items() if joined}
        assert graph.is_independent_set(mis)

    def test_default_model_allows_point_to_point(self):
        class Whisper(NodeAlgorithm):
            def initialize(self, ctx):
                ctx.send(ctx.neighbors[0], 1, size_bits=1)

            def on_round(self, ctx, inbox):
                ctx.halt()

        CongestNetwork(clique(["a", "b"]), Whisper).run()  # must not raise
