"""Tests for the CONGEST network simulator: semantics and accounting."""

import pytest

from repro.congest import (
    BandwidthExceededError,
    CongestNetwork,
    NodeAlgorithm,
    integer_bits,
    payload_size_bits,
)
from repro.graphs import WeightedGraph, clique, path_graph


class _Silent(NodeAlgorithm):
    def on_round(self, ctx, inbox):
        ctx.halt("done")


class _PingOnce(NodeAlgorithm):
    """Node 'a' sends one message to 'b' in round 1; receivers record."""

    def __init__(self):
        self.received = []

    def initialize(self, ctx):
        if ctx.node_id == "a":
            ctx.send("b", 42, size_bits=6)

    def on_round(self, ctx, inbox):
        self.received.extend((ctx.round_number, m.payload) for m in inbox)
        ctx.halt(len(inbox))


class TestBasics:
    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            CongestNetwork(WeightedGraph(), _Silent)

    def test_bad_multiplier_rejected(self):
        with pytest.raises(ValueError):
            CongestNetwork(clique(["a", "b"]), _Silent, bandwidth_multiplier=0)

    def test_all_nodes_halt(self):
        net = CongestNetwork(clique(["a", "b", "c"]), _Silent)
        rounds = net.run()
        assert rounds == 1
        assert net.all_halted()
        assert set(net.outputs().values()) == {"done"}

    def test_message_delivered_next_round(self):
        graph = path_graph(["a", "b"])
        algs = {}

        def factory():
            alg = _PingOnce()
            algs[len(algs)] = alg
            return alg

        net = CongestNetwork(graph, factory, bandwidth_multiplier=8)
        net.run()
        received = [r for alg in algs.values() for r in alg.received]
        assert received == [(1, 42)]

    def test_id_bits_at_least_one(self):
        net = CongestNetwork(WeightedGraph(nodes=["solo"]), _Silent)
        assert net.id_bits == 1

    def test_id_bits_log_n(self):
        net = CongestNetwork(clique(list(range(9))), _Silent)
        assert net.id_bits == 4

    def test_context_exposes_weight_and_degree(self):
        graph = WeightedGraph(nodes={"a": 5, "b": 1})
        graph.add_edge("a", "b")
        net = CongestNetwork(graph, _Silent)
        ctx = net.contexts["a"]
        assert ctx.weight == 5
        assert ctx.degree == 1
        assert ctx.num_nodes == 2


class TestSendRules:
    def test_send_to_non_neighbor_rejected(self):
        class Bad(NodeAlgorithm):
            def initialize(self, ctx):
                if ctx.node_id == "a":
                    ctx.send("c", 1)

            def on_round(self, ctx, inbox):
                ctx.halt()

        graph = path_graph(["a", "b", "c"])
        with pytest.raises(ValueError):
            CongestNetwork(graph, Bad).run()

    def test_halted_node_cannot_send(self):
        class HaltThenSend(NodeAlgorithm):
            def on_round(self, ctx, inbox):
                ctx.halt()
                ctx.send(ctx.neighbors[0], 1)

        with pytest.raises(RuntimeError):
            CongestNetwork(clique(["a", "b"]), HaltThenSend).run()

    def test_oversized_message_rejected(self):
        class Chatty(NodeAlgorithm):
            def initialize(self, ctx):
                ctx.send(ctx.neighbors[0], 0, size_bits=10_000)

            def on_round(self, ctx, inbox):
                ctx.halt()

        with pytest.raises(BandwidthExceededError):
            CongestNetwork(clique(["a", "b"]), Chatty).run()

    def test_edge_oversubscription_rejected(self):
        class DoubleSend(NodeAlgorithm):
            def initialize(self, ctx):
                bits = 3
                for _ in range(10):
                    ctx.send(ctx.neighbors[0], 1, size_bits=bits)

            def on_round(self, ctx, inbox):
                ctx.halt()

        with pytest.raises(BandwidthExceededError):
            CongestNetwork(clique(["a", "b"]), DoubleSend).run()

    def test_bandwidth_resets_between_rounds(self):
        class OnePerRound(NodeAlgorithm):
            def initialize(self, ctx):
                self.sent = 0
                if ctx.node_id == "a":
                    ctx.send("b", 0, size_bits=1)
                    self.sent = 1

            def on_round(self, ctx, inbox):
                if ctx.node_id == "a" and self.sent < 3:
                    ctx.send("b", 0, size_bits=1)
                    self.sent += 1
                else:
                    ctx.halt()

        net = CongestNetwork(clique(["a", "b"]), OnePerRound, bandwidth_multiplier=1)
        net.run()  # must not raise

    def test_different_messages_to_different_neighbors(self):
        received = {}

        class Personalized(NodeAlgorithm):
            def initialize(self, ctx):
                if ctx.node_id == "hub":
                    for i, neighbor in enumerate(ctx.neighbors):
                        ctx.send(neighbor, i, size_bits=4)

            def on_round(self, ctx, inbox):
                for m in inbox:
                    received[ctx.node_id] = m.payload
                ctx.halt()

        graph = WeightedGraph(edges=[("hub", "x"), ("hub", "y")])
        CongestNetwork(graph, Personalized, bandwidth_multiplier=2).run()
        assert len(set(received.values())) == 2


class TestAccounting:
    def test_bits_and_messages_counted(self):
        class SendOne(NodeAlgorithm):
            def initialize(self, ctx):
                for neighbor in ctx.neighbors:
                    ctx.send(neighbor, 1, size_bits=2)

            def on_round(self, ctx, inbox):
                ctx.halt()

        net = CongestNetwork(clique(["a", "b", "c"]), SendOne)
        net.run()
        assert net.total_messages == 6  # 3 nodes x 2 neighbors
        assert net.total_bits == 12

    def test_round_stats_recorded(self):
        net = CongestNetwork(clique(["a", "b"]), _Silent)
        net.run()
        assert len(net.round_stats) == 1
        assert net.round_stats[0].round_number == 1

    def test_message_log_disabled_by_default(self):
        net = CongestNetwork(clique(["a", "b"]), _Silent)
        net.run()
        assert net.message_log == []

    def test_max_rounds_enforced(self):
        class Forever(NodeAlgorithm):
            def on_round(self, ctx, inbox):
                ctx.broadcast(1, size_bits=1)

        with pytest.raises(RuntimeError):
            CongestNetwork(clique(["a", "b"]), Forever).run(max_rounds=10)

    def test_quiescence_finalizes(self):
        class Passive(NodeAlgorithm):
            def on_round(self, ctx, inbox):
                pass

            def finalize(self, ctx):
                ctx.halt("finalized")

        net = CongestNetwork(clique(["a", "b"]), Passive)
        net.run_until_quiescent()
        assert set(net.outputs().values()) == {"finalized"}


class TestPayloadSizing:
    def test_integer_bits(self):
        assert integer_bits(0) == 1
        assert integer_bits(1) == 1
        assert integer_bits(255) == 8

    def test_integer_bits_negative_raises(self):
        with pytest.raises(ValueError):
            integer_bits(-1)

    def test_payload_sizes(self):
        assert payload_size_bits(None, 8) == 1
        assert payload_size_bits(True, 8) == 1
        assert payload_size_bits(7, 8) == 3
        assert payload_size_bits(1.5, 8) == 64
        assert payload_size_bits("ab", 8) == 16
        assert payload_size_bits((1, 1), 8) == 6  # 2 * (2 + 1)
        assert payload_size_bits(object(), 8) == 8
