"""Property-based fuzzing of the simulator's delivery semantics.

Hypothesis drives arbitrary (bandwidth-respecting) send schedules and
checks the model's contract exactly: a message sent in round r arrives
at its receiver — and only there — at round r + 1, with payload intact.
"""

import random
from typing import Dict, List, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.congest import CongestNetwork, NodeAlgorithm
from repro.graphs import clique

_NODES = ["n0", "n1", "n2", "n3"]
_MAX_ROUNDS = 5

# A schedule entry: (send_round, sender_idx, receiver_idx, payload_int)
_entry = st.tuples(
    st.integers(1, _MAX_ROUNDS),
    st.integers(0, len(_NODES) - 1),
    st.integers(0, len(_NODES) - 1),
    st.integers(0, 7),
)


class _ScriptedSender(NodeAlgorithm):
    """Sends according to a fixed schedule; records everything received."""

    def __init__(self, node_id, schedule, received):
        self._node_id = node_id
        self._schedule = schedule  # round -> list of (receiver, payload)
        self._received = received

    def initialize(self, ctx):
        pass

    def on_round(self, ctx, inbox):
        for message in inbox:
            self._received.append(
                (ctx.round_number, message.sender, ctx.node_id, message.payload)
            )
        for receiver, payload in self._schedule.get(ctx.round_number, []):
            ctx.send(receiver, payload, size_bits=3)
        if ctx.round_number >= _MAX_ROUNDS + 1:
            ctx.halt()


def _dedupe_bandwidth(entries):
    """Keep at most one send per (round, sender, receiver) to fit 3-bit
    messages into the 2 * ceil(log2 4) = 4-bit budget... conservatively
    one message per directed edge per round."""
    seen = set()
    kept = []
    for send_round, sender, receiver, payload in entries:
        if sender == receiver:
            continue
        key = (send_round, sender, receiver)
        if key in seen:
            continue
        seen.add(key)
        kept.append((send_round, sender, receiver, payload))
    return kept


@settings(max_examples=40, deadline=None)
@given(entries=st.lists(_entry, max_size=25))
def test_fuzz_exact_delivery(entries):
    entries = _dedupe_bandwidth(entries)
    graph = clique(_NODES)
    received: List[Tuple[int, str, str, int]] = []
    schedules: Dict[str, Dict[int, List[Tuple[str, int]]]] = {
        node: {} for node in _NODES
    }
    for send_round, sender, receiver, payload in entries:
        schedules[_NODES[sender]].setdefault(send_round, []).append(
            (_NODES[receiver], payload)
        )

    node_iter = iter(_NODES)

    def factory():
        node = next(node_iter)
        return _ScriptedSender(node, schedules[node], received)

    net = CongestNetwork(graph, factory, bandwidth_multiplier=2)
    net.run(max_rounds=_MAX_ROUNDS + 2)

    expected = sorted(
        (send_round + 1, _NODES[sender], _NODES[receiver], payload)
        for send_round, sender, receiver, payload in entries
    )
    assert sorted(received) == expected


@settings(max_examples=25, deadline=None)
@given(entries=st.lists(_entry, max_size=20), seed=st.integers(0, 100))
def test_fuzz_accounting_matches_schedule(entries, seed):
    entries = _dedupe_bandwidth(entries)
    graph = clique(_NODES)
    received: List = []
    schedules: Dict[str, Dict[int, List[Tuple[str, int]]]] = {
        node: {} for node in _NODES
    }
    for send_round, sender, receiver, payload in entries:
        schedules[_NODES[sender]].setdefault(send_round, []).append(
            (_NODES[receiver], payload)
        )
    node_iter = iter(_NODES)

    def factory():
        node = next(node_iter)
        return _ScriptedSender(node, schedules[node], received)

    net = CongestNetwork(graph, factory, bandwidth_multiplier=2, seed=seed)
    net.run(max_rounds=_MAX_ROUNDS + 2)
    assert net.total_messages == len(entries)
    assert net.total_bits == 3 * len(entries)
