"""Tests for the bundled CONGEST algorithms."""

import random

import pytest

from repro.congest import (
    BFSTree,
    CongestNetwork,
    FloodBroadcast,
    FullGraphCollection,
    GreedyWeightedIS,
    LeaderElection,
    LubyMIS,
)
from repro.graphs import (
    WeightedGraph,
    clique,
    cycle_graph,
    path_graph,
    random_graph,
    star_graph,
)
from repro.maxis import greedy_by_weight, max_independent_set_weight


def _is_maximal_independent(graph, nodes):
    if not graph.is_independent_set(nodes):
        return False
    covered = set(nodes)
    for node in nodes:
        covered |= graph.neighbors(node)
    return covered == graph.node_set()


class TestFullGraphCollection:
    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: clique(list(range(6))),
            lambda: cycle_graph(list(range(7))),
            lambda: path_graph(list(range(5))),
            lambda: random_graph(10, 0.4, rng=random.Random(0)),
        ],
    )
    def test_everyone_learns_the_graph(self, graph_factory):
        graph = graph_factory()
        if not graph.is_connected():
            pytest.skip("collection needs a connected graph")
        net = CongestNetwork(graph, FullGraphCollection, bandwidth_multiplier=3)
        net.run_until_quiescent()
        for output in net.outputs().values():
            assert output == graph

    def test_weights_travel_too(self):
        graph = path_graph(["a", "b", "c"])
        graph.set_weight("a", 9)
        net = CongestNetwork(graph, FullGraphCollection, bandwidth_multiplier=3)
        net.run_until_quiescent()
        collected = net.outputs()["c"]
        assert collected.weight("a") == 9

    def test_local_evaluation(self):
        graph = cycle_graph(list(range(5)))
        net = CongestNetwork(
            graph,
            lambda: FullGraphCollection(evaluate=max_independent_set_weight),
            bandwidth_multiplier=3,
        )
        net.run_until_quiescent()
        assert set(net.outputs().values()) == {2}

    def test_round_count_bounded_by_information(self):
        graph = clique(list(range(6)))
        net = CongestNetwork(graph, FullGraphCollection, bandwidth_multiplier=3)
        rounds = net.run_until_quiescent()
        facts = graph.num_nodes + graph.num_edges
        assert rounds <= 2 * facts + graph.num_nodes


class TestLubyMIS:
    @pytest.mark.parametrize("seed", range(5))
    def test_produces_maximal_independent_set(self, seed):
        graph = random_graph(24, 0.3, rng=random.Random(seed))
        net = CongestNetwork(graph, LubyMIS, bandwidth_multiplier=2, seed=seed)
        net.run(max_rounds=2000)
        mis = {v for v, joined in net.outputs().items() if joined}
        assert _is_maximal_independent(graph, mis)

    def test_edgeless_graph_everyone_joins(self):
        graph = WeightedGraph(nodes=list(range(5)))
        net = CongestNetwork(graph, LubyMIS, bandwidth_multiplier=2, seed=0)
        net.run(max_rounds=100)
        assert all(net.outputs().values())

    def test_clique_exactly_one_joins(self):
        graph = clique(list(range(8)))
        net = CongestNetwork(graph, LubyMIS, bandwidth_multiplier=2, seed=1)
        net.run(max_rounds=2000)
        assert sum(net.outputs().values()) == 1


class TestGreedyWeightedIS:
    @pytest.mark.parametrize("seed", range(4))
    def test_maximal_independent(self, seed):
        graph = random_graph(20, 0.35, rng=random.Random(seed), weight_range=(1, 9))
        net = CongestNetwork(graph, GreedyWeightedIS, bandwidth_multiplier=2)
        net.run(max_rounds=5000)
        chosen = {v for v, joined in net.outputs().items() if joined}
        assert _is_maximal_independent(graph, chosen)

    def test_matches_sequential_greedy_by_weight(self):
        graph = random_graph(15, 0.4, rng=random.Random(42), weight_range=(1, 50))
        # Make weights distinct so both greedy orders coincide.
        for i, node in enumerate(graph.nodes()):
            graph.set_weight(node, 100 * graph.weight(node) + i)
        net = CongestNetwork(graph, GreedyWeightedIS, bandwidth_multiplier=3)
        net.run(max_rounds=5000)
        distributed = {v for v, joined in net.outputs().items() if joined}
        # Sequential greedy with the same (weight, repr(id)) tie-break.
        sequential = set()
        blocked = set()
        for node in sorted(
            graph.nodes(), key=lambda v: (-graph.weight(v), repr(v))
        ):
            if node not in blocked:
                sequential.add(node)
                blocked.add(node)
                blocked |= graph.neighbors(node)
        # Tie-break order differs ((w, id) max vs (-w, id) min), so only
        # require both to be maximal with the same weight when weights are
        # distinct and dominate ids.
        assert graph.total_weight(distributed) == graph.total_weight(sequential)

    def test_heavy_node_always_selected(self):
        graph = star_graph("hub", [f"l{i}" for i in range(4)])
        graph.set_weight("hub", 100)
        net = CongestNetwork(graph, GreedyWeightedIS, bandwidth_multiplier=2)
        net.run(max_rounds=100)
        assert net.outputs()["hub"] is True


class TestBFS:
    @pytest.mark.parametrize("seed", range(3))
    def test_distances_match_centralized_bfs(self, seed):
        graph = random_graph(15, 0.35, rng=random.Random(seed + 7))
        if not graph.is_connected():
            pytest.skip("need a connected sample")
        root = graph.node_list()[0]
        net = CongestNetwork(graph, lambda: BFSTree(root), bandwidth_multiplier=2)
        net.run_until_quiescent()
        distances = {v: out[0] for v, out in net.outputs().items()}
        assert distances == graph.bfs_distances(root)

    def test_parents_form_tree(self):
        graph = cycle_graph(list(range(6)))
        root = 0
        net = CongestNetwork(graph, lambda: BFSTree(root), bandwidth_multiplier=2)
        net.run_until_quiescent()
        outputs = net.outputs()
        assert outputs[root] == (0, None)
        for node, (distance, parent) in outputs.items():
            if node != root:
                assert outputs[parent][0] == distance - 1
                assert graph.has_edge(node, parent)

    def test_rounds_close_to_eccentricity(self):
        graph = path_graph(list(range(10)))
        net = CongestNetwork(graph, lambda: BFSTree(0), bandwidth_multiplier=2)
        rounds = net.run_until_quiescent()
        assert rounds <= 11


class TestLeaderElection:
    @pytest.mark.parametrize("seed", range(3))
    def test_unique_leader_with_max_id(self, seed):
        graph = random_graph(12, 0.4, rng=random.Random(seed + 30))
        if not graph.is_connected():
            pytest.skip("need a connected sample")
        net = CongestNetwork(graph, LeaderElection, bandwidth_multiplier=2)
        net.run_until_quiescent()
        leaders = [v for v, is_leader in net.outputs().items() if is_leader]
        assert leaders == [max(graph.nodes(), key=repr)]


class TestFloodBroadcast:
    def test_everyone_receives_value(self):
        graph = cycle_graph(list(range(8)))
        net = CongestNetwork(
            graph, lambda: FloodBroadcast(0, value=3), bandwidth_multiplier=2
        )
        net.run_until_quiescent()
        assert set(net.outputs().values()) == {3}

    def test_source_without_value_raises(self):
        graph = clique(["a", "b"])
        net = CongestNetwork(graph, lambda: FloodBroadcast("a"))
        with pytest.raises(ValueError):
            net.run_until_quiescent()
