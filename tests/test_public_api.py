"""Public API integrity: every export exists, is importable, documented.

The packages re-export heavily; these meta-tests pin that ``__all__``
never drifts from reality and that the public surface stays documented.
"""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.codes",
    "repro.commcc",
    "repro.congest",
    "repro.congest.algorithms",
    "repro.core",
    "repro.framework",
    "repro.gadgets",
    "repro.graphs",
    "repro.maxis",
    "repro.obs",
    "repro.parallel",
    "repro.store",
]


@pytest.mark.parametrize("package_name", PACKAGES)
class TestAllExports:
    def test_all_names_resolve(self, package_name):
        package = importlib.import_module(package_name)
        for name in getattr(package, "__all__", []):
            assert hasattr(package, name), f"{package_name}.{name} missing"

    def test_all_is_sorted_uniquely(self, package_name):
        package = importlib.import_module(package_name)
        exported = getattr(package, "__all__", [])
        assert len(exported) == len(set(exported)), f"{package_name} duplicates"

    def test_public_callables_documented(self, package_name):
        package = importlib.import_module(package_name)
        undocumented = []
        for name in getattr(package, "__all__", []):
            obj = getattr(package, name)
            if callable(obj) and not inspect.isclass(obj):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(name)
            elif inspect.isclass(obj):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(name)
        assert not undocumented, f"{package_name}: undocumented {undocumented}"


class TestTopLevel:
    def test_version_string(self):
        import repro

        assert repro.__version__.count(".") == 2

    def test_cli_importable(self):
        from repro.cli import build_parser

        parser = build_parser()
        assert parser.prog == "repro"

    def test_module_docstrings(self):
        for package_name in PACKAGES:
            package = importlib.import_module(package_name)
            assert (package.__doc__ or "").strip(), f"{package_name} lacks a docstring"
