"""Tests for gap predicates and cut computation."""

import pytest

from repro.framework import (
    GapPredicate,
    GapViolation,
    cut_edges,
    cut_size,
    node_membership,
    pairwise_cut_sizes,
    per_round_cut_traffic,
)
from repro.graphs import WeightedGraph, clique


class TestGapPredicate:
    def _graph_with_opt(self, weight):
        graph = WeightedGraph(nodes={"a": weight})
        return graph

    def test_low_side(self):
        gap = GapPredicate(low_threshold=5, high_threshold=10)
        assert gap.evaluate(self._graph_with_opt(4)) is True

    def test_high_side(self):
        gap = GapPredicate(low_threshold=5, high_threshold=10)
        assert gap.evaluate(self._graph_with_opt(12)) is False

    def test_boundaries_inclusive(self):
        gap = GapPredicate(low_threshold=5, high_threshold=10)
        assert gap.evaluate(self._graph_with_opt(5)) is True
        assert gap.evaluate(self._graph_with_opt(10)) is False

    def test_strict_raises_inside_gap(self):
        gap = GapPredicate(low_threshold=5, high_threshold=10)
        with pytest.raises(GapViolation):
            gap.evaluate(self._graph_with_opt(7))

    def test_non_strict_rounds_to_nearest(self):
        gap = GapPredicate(low_threshold=5, high_threshold=10, strict=False)
        assert gap.evaluate(self._graph_with_opt(6)) is True
        assert gap.evaluate(self._graph_with_opt(9)) is False

    def test_gamma_and_meaningful(self):
        gap = GapPredicate(low_threshold=5, high_threshold=10)
        assert gap.gamma == 0.5
        assert gap.is_meaningful
        assert not GapPredicate(low_threshold=10, high_threshold=10).is_meaningful

    def test_custom_solver(self):
        gap = GapPredicate(low_threshold=1, high_threshold=2, solver=lambda g: 0)
        assert gap.evaluate(WeightedGraph()) is True

    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            GapPredicate(low_threshold=-1, high_threshold=5)
        with pytest.raises(ValueError):
            GapPredicate(low_threshold=1, high_threshold=0)


class TestCut:
    def test_membership(self):
        membership = node_membership([{"a"}, {"b", "c"}])
        assert membership == {"a": 0, "b": 1, "c": 1}

    def test_membership_overlap_raises(self):
        with pytest.raises(ValueError):
            node_membership([{"a"}, {"a"}])

    def test_cut_edges(self):
        graph = WeightedGraph(edges=[("a", "b"), ("a", "c"), ("b", "c")])
        crossing = cut_edges(graph, [{"a"}, {"b", "c"}])
        assert len(crossing) == 2

    def test_cut_size_zero_within_part(self):
        graph = clique(["a", "b", "c"])
        assert cut_size(graph, [{"a", "b", "c"}]) == 0

    def test_uncovered_endpoint_raises(self):
        graph = WeightedGraph(edges=[("a", "b")])
        with pytest.raises(ValueError):
            cut_edges(graph, [{"a"}])

    def test_pairwise_cut_sizes(self):
        graph = WeightedGraph(
            edges=[("a", "b"), ("a", "c"), ("b", "c"), ("a", "a2")]
        )
        sizes = pairwise_cut_sizes(graph, [{"a", "a2"}, {"b"}, {"c"}])
        assert sizes == {(0, 1): 1, (0, 2): 1, (1, 2): 1}


class _Message:
    def __init__(self, sender, receiver, size_bits):
        self.sender = sender
        self.receiver = receiver
        self.size_bits = size_bits


class TestPerRoundCutTraffic:
    MEMBERSHIP = {"a": 0, "a2": 0, "b": 1}

    def test_counts_only_crossing_messages(self):
        log = [
            (1, _Message("a", "b", 8)),
            (1, _Message("a", "a2", 99)),  # internal: free
            (2, _Message("b", "a", 4)),
            (2, _Message("b", "a2", 4)),
        ]
        traffic = per_round_cut_traffic(log, self.MEMBERSHIP)
        assert traffic == [(1, 1, 8), (2, 2, 8)]

    def test_series_is_dense_with_zero_rounds(self):
        log = [(3, _Message("a", "b", 5))]
        traffic = per_round_cut_traffic(log, self.MEMBERSHIP)
        assert traffic == [(1, 0, 0), (2, 0, 0), (3, 1, 5)]

    def test_num_rounds_extends_the_tail(self):
        log = [(1, _Message("a", "b", 5))]
        traffic = per_round_cut_traffic(log, self.MEMBERSHIP, num_rounds=3)
        assert traffic == [(1, 1, 5), (2, 0, 0), (3, 0, 0)]

    def test_empty_log(self):
        assert per_round_cut_traffic([], self.MEMBERSHIP) == []
