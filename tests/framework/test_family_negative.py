"""Negative tests: the verifiers must catch every way a family can cheat."""

from typing import List, Sequence, Set

import pytest

from repro.commcc import BitString, promise_pairwise_disjointness
from repro.framework import (
    FamilyViolation,
    LowerBoundFamily,
    verify_locality,
    verify_partition,
)
from repro.graphs import Node, WeightedGraph


class _BaseFamily(LowerBoundFamily):
    """A minimal honest family used as the mutation baseline."""

    num_players = 2
    input_length = 2

    def build(self, inputs: Sequence[BitString]) -> WeightedGraph:
        graph = WeightedGraph()
        graph.add_node(("p", 0), weight=1 + inputs[0][0])
        graph.add_node(("p", 1), weight=1 + inputs[1][0])
        graph.add_edge(("p", 0), ("p", 1))
        return graph

    def partition(self) -> List[Set[Node]]:
        return [{("p", 0)}, {("p", 1)}]

    def function_value(self, inputs) -> bool:
        return promise_pairwise_disjointness(inputs)

    def predicate(self, graph) -> bool:
        return True


class _CutChangesWithInput(_BaseFamily):
    """The cut gains an edge when player 0's second bit is set."""

    def build(self, inputs):
        graph = WeightedGraph()
        graph.add_node(("p", 0))
        graph.add_node(("p", 1))
        graph.add_node(("q", 0))
        if inputs[0][1]:
            graph.add_edge(("q", 0), ("p", 1))
        return graph

    def partition(self):
        return [{("p", 0), ("q", 0)}, {("p", 1)}]


class _NodeSetChangesWithInput(_BaseFamily):
    def build(self, inputs):
        graph = super().build(inputs)
        if inputs[0][1]:
            graph.add_node(("extra", 0))
        return graph

    def partition(self):
        return [{("p", 0), ("extra", 0)}, {("p", 1)}]


class _EdgeLeakFamily(_BaseFamily):
    """Player 1's internal edge appears based on player 0's input."""

    def build(self, inputs):
        graph = WeightedGraph()
        graph.add_node(("p", 0))
        graph.add_node(("p", 1))
        graph.add_node(("r", 1))
        if inputs[0][0]:
            graph.add_edge(("p", 1), ("r", 1))
        return graph

    def partition(self):
        return [{("p", 0)}, {("p", 1), ("r", 1)}]


def _base_inputs():
    return [BitString.zeros(2), BitString.zeros(2)]


def _flip(player: int, bit: int):
    inputs = _base_inputs()
    inputs[player] = BitString.from_indices(2, [bit])
    return inputs


class TestCutStability:
    def test_input_dependent_cut_detected(self):
        family = _CutChangesWithInput()
        with pytest.raises(FamilyViolation, match="cut"):
            verify_locality(family, _base_inputs(), [_flip(0, 1)])

    def test_honest_family_passes(self):
        verify_locality(_BaseFamily(), _base_inputs(), [_flip(0, 0), _flip(1, 0)])


class TestNodeSetStability:
    def test_input_dependent_node_set_detected(self):
        family = _NodeSetChangesWithInput()
        with pytest.raises(FamilyViolation, match="node set"):
            verify_locality(family, _base_inputs(), [_flip(0, 1)])


class TestEdgeLocality:
    def test_cross_player_edge_leak_detected(self):
        family = _EdgeLeakFamily()
        with pytest.raises(FamilyViolation, match="internal edges"):
            verify_locality(family, _base_inputs(), [_flip(0, 0)])


class TestPartitionShape:
    def test_wrong_part_count_detected(self):
        class ThreeParts(_BaseFamily):
            def partition(self):
                return [{("p", 0)}, {("p", 1)}, set()]

        family = ThreeParts()
        graph = family.build(_base_inputs())
        with pytest.raises(FamilyViolation, match="parts"):
            verify_partition(family, graph)

    def test_overlapping_parts_detected(self):
        class Overlap(_BaseFamily):
            def partition(self):
                return [{("p", 0), ("p", 1)}, {("p", 1)}]

        family = Overlap()
        graph = family.build(_base_inputs())
        with pytest.raises(FamilyViolation, match="overlap"):
            verify_partition(family, graph)
