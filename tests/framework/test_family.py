"""Tests for Definition 4's machine-checked conditions."""

import random
from typing import List, Sequence, Set

import pytest

from repro.commcc import (
    BitString,
    pairwise_disjoint_inputs,
    promise_pairwise_disjointness,
    uniquely_intersecting_inputs,
)
from repro.framework import (
    FamilyViolation,
    LowerBoundFamily,
    player_subgraph_view,
    verify_locality,
    verify_partition,
    verify_predicate_matches_function,
)
from repro.gadgets import GadgetParameters, LinearMaxISFamily
from repro.graphs import Node, WeightedGraph


class _CheatingFamily(LowerBoundFamily):
    """A deliberately broken family: player 0's weight leaks player 1's input."""

    num_players = 2
    input_length = 3

    def build(self, inputs: Sequence[BitString]) -> WeightedGraph:
        graph = WeightedGraph()
        graph.add_node(("p", 0), weight=1 + inputs[1][0])  # the leak
        graph.add_node(("p", 1), weight=1)
        graph.add_edge(("p", 0), ("p", 1))
        return graph

    def partition(self) -> List[Set[Node]]:
        return [{("p", 0)}, {("p", 1)}]

    def function_value(self, inputs) -> bool:
        return promise_pairwise_disjointness(inputs)

    def predicate(self, graph) -> bool:
        return True


class _BadPartitionFamily(_CheatingFamily):
    def build(self, inputs):
        graph = super().build(inputs)
        graph.add_node(("p", 2))  # not covered by the partition
        return graph


class _WrongPredicateFamily(_CheatingFamily):
    def build(self, inputs):
        graph = WeightedGraph()
        graph.add_node(("p", 0), weight=1)
        graph.add_node(("p", 1), weight=1)
        return graph

    def predicate(self, graph):
        return False  # never matches f on disjoint inputs


def _perturbations(k, t, base, rng):
    """Variants of `base` changing one player's coordinate at a time."""
    variants = []
    for i in range(t):
        changed = list(base)
        changed[i] = BitString.from_indices(k, [rng.randrange(k)])
        variants.append(changed)
    return variants


class TestVerifyPartition:
    def test_linear_family_partition_ok(self, figure_params):
        family = LinearMaxISFamily(figure_params, warmup=True)
        graph = family.build([BitString.zeros(figure_params.k)] * 2)
        verify_partition(family, graph)

    def test_uncovered_node_detected(self):
        family = _BadPartitionFamily()
        graph = family.build([BitString.zeros(3)] * 2)
        with pytest.raises(FamilyViolation):
            verify_partition(family, graph)


class TestVerifyLocality:
    def test_linear_family_is_local(self, figure_params):
        family = LinearMaxISFamily(figure_params, warmup=True)
        rng = random.Random(0)
        base = pairwise_disjoint_inputs(figure_params.k, 2, rng=rng)
        variants = _perturbations(figure_params.k, 2, base, rng)
        verify_locality(family, base, variants)

    def test_cheating_family_detected(self):
        family = _CheatingFamily()
        base = [BitString.zeros(3), BitString.zeros(3)]
        leak = [BitString.zeros(3), BitString.from_indices(3, [0])]
        with pytest.raises(FamilyViolation):
            verify_locality(family, base, [leak])

    def test_unchanged_variant_passes(self):
        family = _CheatingFamily()
        base = [BitString.zeros(3), BitString.zeros(3)]
        verify_locality(family, base, [list(base)])


class TestVerifyPredicate:
    def test_linear_family_condition2(self, figure_params):
        family = LinearMaxISFamily(figure_params, warmup=True)
        rng = random.Random(1)
        samples = [
            uniquely_intersecting_inputs(figure_params.k, 2, rng=rng),
            pairwise_disjoint_inputs(figure_params.k, 2, rng=rng),
        ]
        verify_predicate_matches_function(family, samples)

    def test_wrong_predicate_detected(self):
        family = _WrongPredicateFamily()
        disjoint = [
            BitString.from_indices(3, [0]),
            BitString.from_indices(3, [1]),
        ]
        with pytest.raises(FamilyViolation):
            verify_predicate_matches_function(family, [disjoint])


class TestPlayerView:
    def test_view_contains_only_own_part(self, figure_params):
        family = LinearMaxISFamily(figure_params, warmup=True)
        graph = family.build([BitString.ones(figure_params.k)] * 2)
        weights, edges = player_subgraph_view(family, graph, 0)
        part = family.partition()[0]
        assert set(weights) == part
        for edge in edges:
            assert edge <= part

    def test_check_inputs_wrong_count(self, figure_params):
        family = LinearMaxISFamily(figure_params, warmup=True)
        with pytest.raises(ValueError):
            family.check_inputs([BitString.zeros(figure_params.k)])

    def test_check_inputs_wrong_length(self, figure_params):
        family = LinearMaxISFamily(figure_params, warmup=True)
        with pytest.raises(ValueError):
            family.check_inputs([BitString.zeros(99)] * 2)
