"""Tests for the Theorem 5 simulation: players simulate a CONGEST run."""

import random

import pytest

from repro.commcc import Blackboard, pairwise_disjoint_inputs, uniquely_intersecting_inputs
from repro.congest import FullGraphCollection
from repro.framework import simulate_congest_via_players
from repro.gadgets import LinearMaxISFamily
from repro.maxis import max_independent_set_weight


@pytest.fixture(scope="module")
def warmup_family():
    from repro.gadgets import GadgetParameters

    return LinearMaxISFamily(GadgetParameters(ell=2, alpha=1, t=2), warmup=True)


def _decider_factory(low_threshold):
    return lambda: FullGraphCollection(
        evaluate=lambda graph: max_independent_set_weight(graph) <= low_threshold
    )


class TestSimulation:
    @pytest.mark.parametrize("intersecting", [True, False])
    def test_decides_the_function(self, warmup_family, intersecting):
        params = warmup_family.params
        gen = (
            uniquely_intersecting_inputs if intersecting else pairwise_disjoint_inputs
        )
        inputs = gen(params.k, params.t, rng=random.Random(3))
        report = simulate_congest_via_players(
            warmup_family,
            inputs,
            _decider_factory(warmup_family.gap.low_threshold),
        )
        assert report.predicate_output == report.function_value
        assert report.function_value == (not intersecting)
        assert report.is_consistent

    def test_blackboard_bits_within_analytic_bound(self, warmup_family):
        params = warmup_family.params
        inputs = pairwise_disjoint_inputs(params.k, params.t, rng=random.Random(4))
        report = simulate_congest_via_players(
            warmup_family,
            inputs,
            _decider_factory(warmup_family.gap.low_threshold),
        )
        assert 0 < report.blackboard_bits <= report.analytic_bit_bound

    def test_external_blackboard_receives_writes(self, warmup_family):
        params = warmup_family.params
        inputs = pairwise_disjoint_inputs(params.k, params.t, rng=random.Random(5))
        board = Blackboard()
        report = simulate_congest_via_players(
            warmup_family,
            inputs,
            _decider_factory(warmup_family.gap.low_threshold),
            blackboard=board,
        )
        assert board.total_bits == report.blackboard_bits
        # Every write is attributed to a player index.
        assert {entry.player for entry in board.entries()} <= {0, 1}

    def test_cut_matches_construction(self, warmup_family):
        params = warmup_family.params
        inputs = pairwise_disjoint_inputs(params.k, params.t, rng=random.Random(6))
        report = simulate_congest_via_players(
            warmup_family,
            inputs,
            _decider_factory(warmup_family.gap.low_threshold),
        )
        assert report.cut_edges == warmup_family.construction.expected_cut_size()

    def test_non_uniform_outputs_rejected(self, warmup_family):
        params = warmup_family.params
        inputs = pairwise_disjoint_inputs(params.k, params.t, rng=random.Random(7))
        counter = iter(range(10_000))
        with pytest.raises(ValueError):
            simulate_congest_via_players(
                warmup_family,
                inputs,
                lambda: FullGraphCollection(evaluate=lambda g: next(counter)),
            )


class TestCutRoundBits:
    @pytest.fixture(scope="class")
    def report(self, warmup_family):
        params = warmup_family.params
        inputs = uniquely_intersecting_inputs(
            params.k, params.t, rng=random.Random(8)
        )
        return simulate_congest_via_players(
            warmup_family,
            inputs,
            _decider_factory(warmup_family.gap.low_threshold),
        )

    def test_series_is_dense_over_all_rounds(self, report):
        assert len(report.cut_round_bits) == report.rounds

    def test_series_sums_to_blackboard_bits(self, report):
        assert sum(report.cut_round_bits) == report.blackboard_bits

    def test_every_round_respects_per_round_bound(self, report):
        assert report.per_round_bit_bound == 2 * report.cut_edges * report.bandwidth_bits
        assert max(report.cut_round_bits) <= report.per_round_bit_bound

    def test_cut_round_bits_observed_as_histogram(self, warmup_family):
        from repro import obs

        params = warmup_family.params
        inputs = uniquely_intersecting_inputs(
            params.k, params.t, rng=random.Random(9)
        )
        with obs.recording() as recorder:
            report = simulate_congest_via_players(
                warmup_family,
                inputs,
                _decider_factory(warmup_family.gap.low_threshold),
            )
        histogram = recorder.histograms["theorem5.cut_round_bits"]
        assert histogram.count == report.rounds
        assert histogram.sum == report.blackboard_bits
