"""Tests for the reduction-as-protocol wrapper."""

import random

import pytest

from repro.commcc import (
    CandidateIndexProtocol,
    promise_inputs,
    promise_pairwise_disjointness,
)
from repro.congest import FullGraphCollection
from repro.framework import ReductionProtocol
from repro.gadgets import GadgetParameters, LinearMaxISFamily
from repro.maxis import max_independent_set_weight


@pytest.fixture(scope="module")
def family():
    return LinearMaxISFamily(GadgetParameters(ell=2, alpha=1, t=2), warmup=True)


@pytest.fixture(scope="module")
def protocol(family):
    low = family.gap.low_threshold
    return ReductionProtocol(
        family,
        lambda: FullGraphCollection(
            evaluate=lambda graph: max_independent_set_weight(graph) <= low
        ),
    )


class TestReductionProtocol:
    @pytest.mark.parametrize("intersecting", [True, False])
    @pytest.mark.parametrize("seed", range(3))
    def test_computes_f(self, family, protocol, intersecting, seed):
        inputs = promise_inputs(
            family.params.k, family.params.t, intersecting, rng=random.Random(seed)
        )
        result = protocol.run(inputs)
        assert result.output == promise_pairwise_disjointness(inputs)

    def test_cost_is_cut_traffic(self, family, protocol):
        inputs = promise_inputs(
            family.params.k, family.params.t, True, rng=random.Random(5)
        )
        result = protocol.run(inputs)
        assert result.cost_bits == protocol.last_report.blackboard_bits
        assert result.cost_bits <= protocol.last_report.analytic_bit_bound

    def test_wrong_player_count_rejected(self, protocol):
        from repro.commcc import BitString

        with pytest.raises(ValueError):
            protocol.run([BitString.zeros(3)] * 3)

    def test_vastly_more_expensive_than_direct_protocol(self, family, protocol):
        """The reduction with the trivial O(n^2) decider costs orders of
        magnitude more than the direct promise-exploiting protocol —
        which is exactly why a *fast* CONGEST algorithm would break
        Theorem 3."""
        params = family.params
        inputs = promise_inputs(params.k, params.t, False, rng=random.Random(7))
        reduction_cost = protocol.run(inputs).cost_bits
        direct_cost = CandidateIndexProtocol().run(inputs).cost_bits
        assert reduction_cost > 100 * direct_cost

    def test_worst_case_cost_interface(self, family, protocol):
        params = family.params
        tuples = [
            promise_inputs(params.k, params.t, side, rng=random.Random(seed))
            for side in (True, False)
            for seed in range(2)
        ]
        worst = protocol.worst_case_cost(tuples)
        assert worst > 0
