"""Tests for success-probability estimation of randomized deciders."""

import random

import pytest

from repro.commcc import promise_inputs
from repro.congest import FullGraphCollection
from repro.framework import SuccessEstimate, estimate_success_probability
from repro.gadgets import GadgetParameters, LinearMaxISFamily
from repro.maxis import max_independent_set_weight


@pytest.fixture(scope="module")
def family():
    return LinearMaxISFamily(GadgetParameters(ell=2, alpha=1, t=2), warmup=True)


def _sampler(params):
    def sample(rng: random.Random):
        return promise_inputs(
            params.k, params.t, intersecting=rng.random() < 0.5, rng=rng
        )

    return sample


class TestSuccessEstimate:
    def test_probability(self):
        estimate = SuccessEstimate(15, 20)
        assert estimate.probability == 0.75
        assert estimate.meets_two_thirds

    def test_below_threshold(self):
        assert not SuccessEstimate(1, 2).meets_two_thirds

    def test_validation(self):
        with pytest.raises(ValueError):
            SuccessEstimate(5, 0)
        with pytest.raises(ValueError):
            SuccessEstimate(5, 4)


class TestEstimation:
    def test_exact_decider_is_always_right(self, family):
        low = family.gap.low_threshold

        def decider():
            return FullGraphCollection(
                evaluate=lambda graph: max_independent_set_weight(graph) <= low
            )

        estimate = estimate_success_probability(
            family, decider, _sampler(family.params), trials=6, seed=1
        )
        assert estimate.probability == 1.0

    def test_one_sided_decider_scores_about_half(self, family):
        """A decider that ignores the graph is right only on one side."""

        def decider():
            return FullGraphCollection(evaluate=lambda graph: True)

        estimate = estimate_success_probability(
            family, decider, _sampler(family.params), trials=12, seed=2
        )
        assert 0.0 < estimate.probability < 1.0
        assert estimate.trials == 12

    def test_anti_decider_is_always_wrong(self, family):
        low = family.gap.low_threshold

        def decider():
            return FullGraphCollection(
                evaluate=lambda graph: max_independent_set_weight(graph) > low
            )

        estimate = estimate_success_probability(
            family, decider, _sampler(family.params), trials=5, seed=3
        )
        assert estimate.probability == 0.0
        assert not estimate.meets_two_thirds
