"""Tests for Corollary 1's round bounds and the limitation protocol."""

import math
import random

import pytest

from repro.commcc import pairwise_disjoint_inputs, uniquely_intersecting_inputs
from repro.framework import (
    RoundLowerBound,
    bachrach_linear_rounds,
    bachrach_quadratic_rounds,
    run_local_optima_exchange,
    theorem1_asymptotic_rounds,
    theorem2_asymptotic_rounds,
    universal_upper_bound_rounds,
)
from repro.gadgets import GadgetParameters, LinearMaxISFamily, QuadraticMaxISFamily


class TestRoundLowerBound:
    def test_formula(self):
        bound = RoundLowerBound(k=64, t=2, cut=8, num_nodes=64)
        # cc = 64 / (2 * 1) = 32; rounds = 32 / (8 * 6).
        assert bound.value == pytest.approx(32 / 48)

    def test_quadratic_input_length(self):
        linear = RoundLowerBound(k=16, t=2, cut=8, num_nodes=64)
        quadratic = RoundLowerBound(
            k=16, t=2, cut=8, num_nodes=64, input_length=16 * 16
        )
        assert quadratic.value == pytest.approx(16 * linear.value)

    def test_smaller_cut_stronger_bound(self):
        small = RoundLowerBound(k=64, t=2, cut=4, num_nodes=64)
        large = RoundLowerBound(k=64, t=2, cut=16, num_nodes=64)
        assert small.value > large.value

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            RoundLowerBound(k=4, t=2, cut=0, num_nodes=10)
        with pytest.raises(ValueError):
            RoundLowerBound(k=4, t=2, cut=1, num_nodes=1)


class TestAsymptoticFormulas:
    def test_theorem1_value(self):
        n = 1024.0
        assert theorem1_asymptotic_rounds(n) == pytest.approx(n / 1000)

    def test_theorem2_is_n_times_theorem1(self):
        n = 4096.0
        assert theorem2_asymptotic_rounds(n) == pytest.approx(
            n * theorem1_asymptotic_rounds(n)
        )

    def test_improvement_over_bachrach(self):
        """The paper's bounds dominate the prior work's by polylog factors."""
        for n in (2 ** 12, 2 ** 16, 2 ** 20):
            assert theorem1_asymptotic_rounds(n) > bachrach_linear_rounds(n)
            assert theorem2_asymptotic_rounds(n) > bachrach_quadratic_rounds(n)

    def test_lower_bounds_below_universal_upper_bound(self):
        for n in (2 ** 10, 2 ** 16):
            assert theorem2_asymptotic_rounds(n) < universal_upper_bound_rounds(n)

    def test_domain_checks(self):
        with pytest.raises(ValueError):
            theorem1_asymptotic_rounds(1)
        with pytest.raises(ValueError):
            universal_upper_bound_rounds(0)


class TestLimitation:
    def test_linear_family_ratio_at_least_one_over_t(self):
        params = GadgetParameters(ell=3, alpha=1, t=2)
        family = LinearMaxISFamily(params, warmup=True)
        for seed in range(3):
            rng = random.Random(seed)
            inputs = uniquely_intersecting_inputs(params.k, params.t, rng=rng)
            report = run_local_optima_exchange(family, inputs)
            assert report.achieved_ratio >= report.guaranteed_ratio - 1e-9

    def test_t3_family(self):
        params = GadgetParameters(ell=2, alpha=1, t=3)
        family = LinearMaxISFamily(params)
        inputs = pairwise_disjoint_inputs(params.k, params.t, rng=random.Random(1))
        report = run_local_optima_exchange(family, inputs)
        assert report.num_players == 3
        assert report.achieved_ratio >= 1 / 3 - 1e-9

    def test_cost_is_logarithmic(self):
        """The protocol's cost is t * O(log W) — trivial next to Omega(k)."""
        params = GadgetParameters(ell=3, alpha=1, t=2)
        family = LinearMaxISFamily(params, warmup=True)
        inputs = pairwise_disjoint_inputs(params.k, params.t, rng=random.Random(2))
        report = run_local_optima_exchange(family, inputs)
        graph = family.build(inputs)
        width = math.ceil(math.log2(graph.total_weight() + 1))
        assert report.cost_bits <= params.t * (width + 1)
