"""Smoke-run every example script end to end.

Examples are part of the public deliverable; these tests pin that each
one runs cleanly and emits its headline output.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


class TestExamples:
    def test_quickstart(self):
        result = _run("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "Claims 1-2 hold exactly" in result.stdout

    def test_linear_lower_bound(self):
        result = _run("linear_lower_bound.py", "3")
        assert result.returncode == 0, result.stderr
        assert "descends toward 1/2" in result.stdout
        assert "[ok]" in result.stdout
        assert "VIOLATED" not in result.stdout

    def test_quadratic_lower_bound(self):
        result = _run("quadratic_lower_bound.py")
        assert result.returncode == 0, result.stderr
        assert "toward 3/4" in result.stdout
        assert "VIOLATED" not in result.stdout

    def test_congest_playground(self):
        result = _run("congest_playground.py")
        assert result.returncode == 0, result.stderr
        assert "Luby MIS" in result.stdout
        assert "Full collection" in result.stdout

    def test_beyond_alice_and_bob(self):
        result = _run("beyond_alice_and_bob.py")
        assert result.returncode == 0, result.stderr
        assert "Theorem 5" in result.stdout
        assert "Omega(n / log^3 n)" in result.stdout

    def test_randomized_protocols(self):
        result = _run("randomized_protocols.py")
        assert result.returncode == 0, result.stderr
        assert "Theorem 3 floor" in result.stdout

    def test_claim7_walkthrough(self):
        result = _run("claim7_walkthrough.py")
        assert result.returncode == 0, result.stderr
        assert "Equivalence classes" in result.stdout
        assert "VIOLATED" not in result.stdout

    def test_export_figures(self, tmp_path):
        result = _run("export_figures.py", str(tmp_path / "figs"))
        assert result.returncode == 0, result.stderr
        assert (tmp_path / "figs" / "figure1_base_graph.dot").exists()
        assert (tmp_path / "figs" / "linear_instance.json").exists()
