"""Tests for the perf-trajectory runner (discovery, stats, compare)."""

import json

import pytest

from benchmarks import runner


def _trajectory(medians, iqr=0.001, sha="aaa", frames=None):
    """Synthesize a minimal bench_trajectory record.

    ``frames`` optionally maps bench name -> leaf-frame self-sample
    fractions (the ``frames`` field real records carry since the
    deep-profile plane landed).
    """
    frames = frames or {}
    return {
        "schema_version": runner.BENCH_SCHEMA_VERSION,
        "kind": "bench_trajectory",
        "provenance": {"git_sha": sha},
        "config": {"warmup": 0, "repeats": 3},
        "benches": {
            name: {
                "parameters": {},
                "frames": frames.get(name, {}),
                "wall": {
                    "repeats": 3,
                    "median_s": median,
                    "iqr_s": iqr,
                    "min_s": median,
                    "max_s": median,
                    "mean_s": median,
                    "stdev_s": 0.0,
                    "outliers_rejected": 0,
                },
                "counters": {},
                "gauges": {},
                "histograms": {},
                "timers": {},
                "spans": {},
            }
            for name, median in medians.items()
        },
    }


class TestDiscovery:
    def test_registry_holds_the_nine_benches(self):
        names = [spec.name for spec in runner.discover()]
        assert names == [
            "construction_build",
            "gf_arithmetic",
            "maxis_exact",
            "kernel_reduction",
            "congest_trace",
            "theorem5_simulation",
            "sweep_parallel",
            "sweep_cache",
            "sweep_serve",
        ]

    def test_only_filter_preserves_request_order(self):
        specs = runner.discover(["maxis_exact", "gf_arithmetic"])
        assert [spec.name for spec in specs] == ["maxis_exact", "gf_arithmetic"]

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="no_such_bench"):
            runner.discover(["no_such_bench"])

    def test_duplicate_registration_raises(self):
        with pytest.raises(ValueError, match="twice"):
            runner.bench("construction_build")(lambda: None)


class TestRobustStats:
    def test_median_and_iqr_over_all_samples(self):
        stats = runner.robust_stats([1.0, 2.0, 3.0, 4.0, 5.0])
        assert stats["median_s"] == pytest.approx(3.0)
        assert stats["iqr_s"] == pytest.approx(2.0)
        assert stats["min_s"] == 1.0
        assert stats["max_s"] == 5.0
        assert stats["outliers_rejected"] == 0

    def test_outlier_rejected_from_mean_but_kept_in_max(self):
        samples = [1.0, 1.0, 1.0, 1.0, 100.0]
        stats = runner.robust_stats(samples)
        assert stats["outliers_rejected"] == 1
        assert stats["mean_s"] == pytest.approx(1.0)
        assert stats["max_s"] == 100.0
        assert stats["repeats"] == 5

    def test_single_sample(self):
        stats = runner.robust_stats([0.5])
        assert stats["median_s"] == 0.5
        assert stats["stdev_s"] == 0.0

    def test_zero_samples_raises(self):
        with pytest.raises(ValueError):
            runner.robust_stats([])


class TestTrajectoryDiscovery:
    def _write(self, tmp_path, name, record, age_s=0):
        import os
        import time

        path = tmp_path / name
        path.write_text(json.dumps(record))
        if age_s:
            stamp = time.time() - age_s
            os.utime(path, (stamp, stamp))
        return path

    def test_discovery_orders_by_mtime(self, tmp_path):
        self._write(tmp_path, "BENCH_new.json", _trajectory({"a": 1.0}, sha="new"))
        self._write(
            tmp_path, "BENCH_old.json", _trajectory({"a": 2.0}, sha="old"), age_s=100
        )
        found = runner.discover_trajectories(tmp_path)
        assert [record["provenance"]["git_sha"] for _, record in found] == [
            "old",
            "new",
        ]

    def test_discovery_skips_unparseable_records(self, tmp_path):
        (tmp_path / "BENCH_broken.json").write_text("{nope")
        (tmp_path / "BENCH_wrongkind.json").write_text('{"kind": "other"}')
        self._write(tmp_path, "BENCH_good.json", _trajectory({"a": 1.0}))
        assert len(runner.discover_trajectories(tmp_path)) == 1

    def test_missing_directory_is_empty(self, tmp_path):
        assert runner.discover_trajectories(tmp_path / "nope") == []

    def test_latest_trajectory_picks_the_newest(self, tmp_path):
        self._write(
            tmp_path, "BENCH_old.json", _trajectory({"a": 1.0}, sha="old"), age_s=100
        )
        newest = self._write(
            tmp_path, "BENCH_new.json", _trajectory({"a": 1.0}, sha="new")
        )
        assert runner.latest_trajectory(tmp_path) == newest

    def test_latest_trajectory_excludes_the_given_record(self, tmp_path):
        old = self._write(
            tmp_path, "BENCH_old.json", _trajectory({"a": 1.0}, sha="old"), age_s=100
        )
        newest = self._write(
            tmp_path, "BENCH_new.json", _trajectory({"a": 1.0}, sha="new")
        )
        assert runner.latest_trajectory(tmp_path, exclude=newest) == old

    def test_latest_trajectory_none_when_empty(self, tmp_path, monkeypatch):
        # Point the committed-baseline fallback at an empty directory,
        # otherwise benchmarks/baselines/ would answer.
        monkeypatch.setattr(runner, "BASELINES_DIR", tmp_path / "no-baselines")
        assert runner.latest_trajectory(tmp_path) is None

    def test_latest_trajectory_falls_back_to_baselines(
        self, tmp_path, monkeypatch
    ):
        baselines = tmp_path / "baselines"
        baselines.mkdir()
        seed = self._write(
            baselines, "BENCH_seed.json", _trajectory({"a": 1.0}, sha="seed")
        )
        monkeypatch.setattr(runner, "BASELINES_DIR", baselines)
        empty_results = tmp_path / "results"
        empty_results.mkdir()
        assert runner.latest_trajectory(empty_results) == seed

    def test_results_dir_wins_over_the_baseline_fallback(
        self, tmp_path, monkeypatch
    ):
        baselines = tmp_path / "baselines"
        baselines.mkdir()
        self._write(
            baselines, "BENCH_seed.json", _trajectory({"a": 1.0}, sha="seed")
        )
        monkeypatch.setattr(runner, "BASELINES_DIR", baselines)
        local = self._write(
            tmp_path, "BENCH_local.json", _trajectory({"a": 1.0}, sha="local")
        )
        assert runner.latest_trajectory(tmp_path) == local

    def test_committed_baseline_is_a_valid_trajectory(self):
        found = runner.discover_trajectories(runner.BASELINES_DIR)
        assert found, "benchmarks/baselines/ should hold a seed record"
        _, record = found[-1]
        # The seed postdates the frames field: attribution works
        # against it out of the box.
        assert any(
            bench.get("frames") for bench in record["benches"].values()
        )

    def test_discover_require_raises_an_actionable_error(self, tmp_path):
        with pytest.raises(FileNotFoundError) as excinfo:
            runner.discover_trajectories(tmp_path, require=True)
        message = str(excinfo.value)
        assert str(tmp_path) in message
        assert "python -m repro bench" in message
        assert "baselines" in message


class TestFrameDeltas:
    def test_fraction_times_median_estimates(self):
        old = _trajectory({"a": 1.0}, frames={"a": {"m:f": 0.5, "m:g": 0.5}})
        new = _trajectory({"a": 2.0}, frames={"a": {"m:f": 0.8, "m:g": 0.2}})
        deltas = runner.frame_deltas(
            old["benches"]["a"], new["benches"]["a"]
        )
        # m:f went 0.5*1.0=0.5s -> 0.8*2.0=1.6s; m:g shrank and is
        # therefore not reported (positive deltas only).
        assert deltas == [
            {
                "frame": "m:f",
                "old_est_s": 0.5,
                "new_est_s": 1.6,
                "delta_s": pytest.approx(1.1),
            }
        ]

    def test_sorted_by_delta_then_name_and_limited(self):
        frames_old = {f"m:{c}": 0.0 for c in "abcd"}
        frames_new = {"m:a": 0.1, "m:b": 0.3, "m:c": 0.3, "m:d": 0.2}
        old = _trajectory({"x": 1.0}, frames={"x": frames_old})
        new = _trajectory({"x": 1.0}, frames={"x": frames_new})
        deltas = runner.frame_deltas(
            old["benches"]["x"], new["benches"]["x"], limit=3
        )
        assert [entry["frame"] for entry in deltas] == ["m:b", "m:c", "m:d"]

    def test_empty_when_either_side_predates_frames(self):
        with_frames = _trajectory({"a": 1.0}, frames={"a": {"m:f": 1.0}})
        without = _trajectory({"a": 2.0})
        assert (
            runner.frame_deltas(
                without["benches"]["a"], with_frames["benches"]["a"]
            )
            == []
        )
        assert (
            runner.frame_deltas(
                with_frames["benches"]["a"], without["benches"]["a"]
            )
            == []
        )


class TestCompare:
    def test_regression_needs_both_gates(self):
        old = _trajectory({"a": 1.0}, iqr=0.01)
        # +50% and far beyond the IQR noise floor: regressed.
        slow = runner.compare(old, _trajectory({"a": 1.5}, iqr=0.01))
        assert slow[0]["verdict"] == "regressed"
        # +50% but within a huge IQR: noise gate blocks the verdict.
        noisy = runner.compare(old, _trajectory({"a": 1.5}, iqr=2.0))
        assert noisy[0]["verdict"] == "ok"
        # +5% absolute movement below the relative threshold: ok.
        small = runner.compare(old, _trajectory({"a": 1.05}, iqr=0.01))
        assert small[0]["verdict"] == "ok"

    def test_improvement_is_symmetric(self):
        old = _trajectory({"a": 2.0}, iqr=0.01)
        new = _trajectory({"a": 1.0}, iqr=0.01)
        assert runner.compare(old, new)[0]["verdict"] == "improved"

    def test_added_and_removed_benches(self):
        old = _trajectory({"a": 1.0, "gone": 1.0})
        new = _trajectory({"a": 1.0, "fresh": 1.0})
        verdicts = {v["bench"]: v["verdict"] for v in runner.compare(old, new)}
        assert verdicts == {"a": "ok", "gone": "removed", "fresh": "added"}

    def test_regressed_verdicts_carry_frame_attribution(self):
        old = _trajectory({"a": 1.0}, iqr=0.01, frames={"a": {"m:f": 1.0}})
        new = _trajectory({"a": 2.0}, iqr=0.01, frames={"a": {"m:f": 1.0}})
        entry = runner.compare(old, new)[0]
        assert entry["verdict"] == "regressed"
        assert entry["frame_deltas"][0]["frame"] == "m:f"
        # Non-regressed verdicts stay lean.
        stable = runner.compare(old, old)[0]
        assert "frame_deltas" not in stable

    def test_threshold_parameter_widens_the_gate(self):
        old = _trajectory({"a": 1.0}, iqr=0.0)
        new = _trajectory({"a": 1.3}, iqr=0.0)
        assert runner.compare(old, new, threshold=0.15)[0]["verdict"] == "regressed"
        assert runner.compare(old, new, threshold=0.50)[0]["verdict"] == "ok"


class TestCompareFiles:
    def _write(self, tmp_path, name, record):
        path = tmp_path / name
        path.write_text(json.dumps(record))
        return path

    def test_exit_one_on_regression(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", _trajectory({"a": 1.0}, sha="old1"))
        new = self._write(tmp_path, "new.json", _trajectory({"a": 2.0}, sha="new1"))
        assert runner.compare_files(old, new) == 1
        out = capsys.readouterr().out
        assert "REGRESSED: a" in out
        assert "old1" in out and "new1" in out

    def test_warn_only_reports_but_exits_zero(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", _trajectory({"a": 1.0}))
        new = self._write(tmp_path, "new.json", _trajectory({"a": 2.0}))
        assert runner.compare_files(old, new, warn_only=True) == 0
        assert "REGRESSED: a" in capsys.readouterr().out

    def test_regression_output_names_the_slower_frames(self, tmp_path, capsys):
        old = self._write(
            tmp_path,
            "old.json",
            _trajectory({"a": 1.0}, frames={"a": {"m:f": 1.0}}),
        )
        new = self._write(
            tmp_path,
            "new.json",
            _trajectory({"a": 2.0}, frames={"a": {"m:f": 1.0}}),
        )
        assert runner.compare_files(old, new) == 1
        out = capsys.readouterr().out
        assert "a slower frames: m:f (+1000.0ms est)" in out

    def test_regression_without_frames_says_so(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", _trajectory({"a": 1.0}))
        new = self._write(tmp_path, "new.json", _trajectory({"a": 2.0}))
        assert runner.compare_files(old, new) == 1
        assert "no frame attribution" in capsys.readouterr().out

    def test_exit_zero_when_stable(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", _trajectory({"a": 1.0}))
        assert runner.compare_files(old, old) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_rejects_non_trajectory_file(self, tmp_path):
        bogus = self._write(tmp_path, "x.json", {"benches": {}})
        with pytest.raises(ValueError, match="bench trajectory"):
            runner.compare_files(bogus, bogus)


class TestRunSuite:
    def test_run_bench_requires_a_repeat(self):
        spec = runner.discover(["construction_build"])[0]
        with pytest.raises(ValueError, match="repeat"):
            runner.run_bench(spec, warmup=0, repeats=0)

    def test_suite_writes_valid_trajectory(self, tmp_path, capsys):
        path, trajectory = runner.run_suite(
            warmup=0, repeats=2, only=["construction_build"], out_dir=str(tmp_path)
        )
        assert path.parent == tmp_path
        assert path.name.startswith("BENCH_")
        on_disk = runner.load_trajectory(path)
        assert on_disk == trajectory
        record = trajectory["benches"]["construction_build"]
        assert record["wall"]["repeats"] == 2
        assert record["wall"]["median_s"] > 0
        # The profiled extra run populated the instrumentation sections.
        assert record["counters"]
        # The manifest pass ran under the sampling profiler; the frames
        # field exists even when the bench is too fast to catch a tick.
        assert isinstance(record["frames"], dict)
        assert set(trajectory["provenance"]) == {
            "git_sha",
            "hostname",
            "python_version",
        }
        assert "construction_build" in capsys.readouterr().out

    def test_sweep_cache_records_speedup_gauges(self, tmp_path, capsys):
        _, trajectory = runner.run_suite(
            warmup=0, repeats=1, only=["sweep_cache"], out_dir=str(tmp_path)
        )
        gauges = trajectory["benches"]["sweep_cache"]["gauges"]
        # The warm half answers every unit from the store, so the
        # speedup is orders of magnitude; 1.5x is the acceptance floor.
        assert gauges["cache.speedup_x"] > 1.5
        assert gauges["cache.cold_s"] > gauges["cache.warm_s"]
        # The bench uses its own private store: the suite-wide cache
        # mode stayed off and is not recorded.
        assert "cache_mode" not in trajectory["config"]
        capsys.readouterr()

    def test_sweep_serve_records_service_gauges(self, tmp_path, capsys):
        _, trajectory = runner.run_suite(
            warmup=0, repeats=1, only=["sweep_serve"], out_dir=str(tmp_path)
        )
        gauges = trajectory["benches"]["sweep_serve"]["gauges"]
        assert gauges["serve.p50_ms"] > 0.0
        assert gauges["serve.p99_ms"] >= gauges["serve.p50_ms"]
        assert gauges["serve.throughput_rps"] > 0.0
        # The plan's duplicates guarantee coalesced or cached answers
        # on the cold pass, so the rate is a real measurement, not 0.
        assert 0.0 < gauges["serve.coalesce_rate"] < 1.0
        assert gauges["serve.cold_s"] > 0.0 and gauges["serve.warm_s"] > 0.0
        capsys.readouterr()

    def test_cache_mode_recorded_when_enabled(self, tmp_path, capsys):
        _, trajectory = runner.run_suite(
            warmup=0,
            repeats=1,
            only=["construction_build"],
            out_dir=str(tmp_path),
            cache_mode="memory",
        )
        assert trajectory["config"]["cache_mode"] == "memory"
        capsys.readouterr()
