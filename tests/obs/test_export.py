"""Tests for the Chrome-trace/Perfetto export of recorded span trees."""

import json

import pytest

from repro.obs import Recorder
from repro.obs.export import (
    MAIN_PID,
    chrome_trace,
    dump_trace,
    trace_events,
    trace_from_events,
    trace_from_recorder,
    write_chrome_trace,
)


class FakeClock:
    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


def _recorded():
    recorder = Recorder(enabled=True, clock=FakeClock())
    with recorder.span("outer", phase="build"):
        with recorder.span("inner"):
            pass
    return recorder


class TestTraceEvents:
    def test_one_complete_event_per_span(self):
        recorder = _recorded()
        events = trace_events(recorder.spans)
        complete = [e for e in events if e["ph"] == "X"]
        assert [e["name"] for e in complete] == ["outer", "inner"]

    def test_metadata_rows_come_first(self):
        events = trace_events(_recorded().spans, trace_name="run")
        metadata = [e for e in events if e["ph"] == "M"]
        assert events[: len(metadata)] == metadata
        names = {
            e["pid"]: e["args"]["name"]
            for e in metadata
            if e["name"] == "process_name"
        }
        assert names == {MAIN_PID: "run"}

    def test_timestamps_and_durations_in_microseconds(self):
        events = trace_events(_recorded().spans)
        outer = next(e for e in events if e["name"] == "outer")
        # FakeClock: outer opens at t=0s and closes at t=3s.
        assert outer["ts"] == 0.0
        assert outer["dur"] == 3_000_000.0

    def test_export_is_lossless(self):
        recorder = _recorded()
        events = trace_events(recorder.spans)
        inner = next(e for e in events if e["name"] == "inner")
        outer = next(e for e in events if e["name"] == "outer")
        assert inner["args"]["repro.parent"] == outer["args"]["repro.index"]
        assert inner["args"]["repro.depth"] == 1
        assert outer["args"]["phase"] == "build"

    def test_every_event_has_pid_and_tid(self):
        for event in trace_events(_recorded().spans):
            assert {"ph", "name", "pid", "tid"} <= set(event)


class TestWorkerTracks:
    def _merged(self):
        worker_a = Recorder(enabled=True, clock=FakeClock())
        with worker_a.span("unit"):
            pass
        worker_b = Recorder(enabled=True, clock=FakeClock())
        with worker_b.span("unit"):
            pass
        parent = Recorder(enabled=True, clock=FakeClock())
        with parent.span("sweep"):
            pass
        parent.merge_snapshot(worker_a.snapshot(), track="sweep/seed=0")
        parent.merge_snapshot(worker_b.snapshot(), track="sweep/seed=1")
        return parent

    def test_each_track_gets_its_own_pid(self):
        events = trace_events(self._merged().spans)
        names = {
            e["args"]["name"]: e["pid"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names["sweep/seed=0"] != names["sweep/seed=1"]
        assert names["repro"] == MAIN_PID

    def test_in_process_spans_stay_on_the_main_track(self):
        events = trace_events(self._merged().spans)
        sweep = next(e for e in events if e["ph"] == "X" and e["name"] == "sweep")
        assert sweep["pid"] == MAIN_PID

    def test_pid_assignment_is_first_appearance_order(self):
        spans = self._merged().spans
        pids = [e["pid"] for e in trace_events(spans) if e["ph"] == "X"]
        assert pids == sorted(pids)


class TestDocumentsAndFiles:
    def test_chrome_trace_document_shape(self):
        trace = chrome_trace(_recorded().spans)
        assert set(trace) == {"displayTimeUnit", "traceEvents"}
        assert trace["displayTimeUnit"] == "ms"

    def test_trace_from_recorder_matches_chrome_trace(self):
        recorder = _recorded()
        assert trace_from_recorder(recorder) == chrome_trace(recorder.spans)

    def test_trace_from_events_skips_non_span_lines(self):
        events = [
            {"type": "meta", "schema_version": 3},
            {
                "type": "span",
                "index": 0,
                "parent": None,
                "depth": 0,
                "name": "phase",
                "params": {},
                "start_s": 1.0,
                "duration_s": 0.5,
                "track": None,
            },
            {"type": "counter", "name": "n", "value": 2},
        ]
        trace = trace_from_events(events)
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert [e["name"] for e in complete] == ["phase"]

    def test_dump_is_byte_deterministic(self):
        recorder = _recorded()
        assert dump_trace(chrome_trace(recorder.spans)) == dump_trace(
            chrome_trace(recorder.spans)
        )

    def test_write_chrome_trace_emits_valid_json(self, tmp_path):
        path = write_chrome_trace(tmp_path / "trace.json", _recorded().spans)
        trace = json.loads(path.read_text())
        assert trace["traceEvents"]

    def test_write_creates_parent_directories(self, tmp_path):
        path = write_chrome_trace(
            tmp_path / "nested" / "dir" / "trace.json", _recorded().spans
        )
        assert path.exists()
