"""Tests for histograms, timers, and the metrics flow through the recorder."""

import random

import pytest

from repro import obs
from repro.obs import InMemorySink, Recorder
from repro.obs.metrics import (
    DEFAULT_RESERVOIR_SIZE,
    Histogram,
    render_summary_rows,
    summarize,
)
from repro.obs.recorder import NULL_SPAN


class FakeClock:
    """Deterministic clock: each read advances by ``step`` seconds."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class TestHistogramExactStats:
    def test_count_sum_min_max_are_exact(self):
        histogram = Histogram.of([3, 1, 4, 1, 5])
        assert histogram.count == 5
        assert histogram.sum == 14
        assert histogram.min == 1
        assert histogram.max == 5
        assert histogram.mean == pytest.approx(2.8)

    def test_empty_histogram_summary_is_zeroes(self):
        summary = Histogram().summary()
        assert summary["count"] == 0
        assert summary["p50"] == 0.0
        assert summary["min"] == 0.0

    def test_quantiles_exact_below_reservoir_size(self):
        # 0..100 fits in the reservoir, so quantiles are exact.
        histogram = Histogram.of(range(101))
        assert histogram.quantile(0.5) == pytest.approx(50.0)
        assert histogram.quantile(0.0) == pytest.approx(0.0)
        assert histogram.quantile(1.0) == pytest.approx(100.0)
        assert histogram.quantile(0.25) == pytest.approx(25.0)

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)

    def test_invalid_reservoir_size(self):
        with pytest.raises(ValueError):
            Histogram(reservoir_size=0)


class TestQuantileAccuracy:
    def test_uniform_distribution_quantiles_within_tolerance(self):
        values = list(range(10_000))
        random.Random(7).shuffle(values)
        histogram = Histogram.of(values)
        # Reservoir sampling: tolerate a few percent of the range.
        assert histogram.quantile(0.50) == pytest.approx(5_000, abs=600)
        assert histogram.quantile(0.90) == pytest.approx(9_000, abs=600)
        assert histogram.quantile(0.99) == pytest.approx(9_900, abs=600)

    def test_bimodal_distribution_p50_and_p99(self):
        # 95% small values, 5% large: p50 must stay small, p99 large.
        values = [1.0] * 9_500 + [1_000.0] * 500
        random.Random(13).shuffle(values)
        histogram = Histogram.of(values)
        assert histogram.quantile(0.50) == pytest.approx(1.0)
        assert histogram.quantile(0.99) == pytest.approx(1_000.0, rel=0.05)

    def test_reservoir_memory_stays_bounded(self):
        histogram = Histogram()
        for value in range(50_000):
            histogram.observe(value)
        assert len(histogram._reservoir) == DEFAULT_RESERVOIR_SIZE
        assert histogram.count == 50_000

    def test_estimates_are_deterministic_across_instances(self):
        values = list(range(5_000))
        random.Random(3).shuffle(values)
        assert Histogram.of(values).summary() == Histogram.of(values).summary()


class TestSummarizeHelpers:
    def test_summarize_matches_histogram_summary(self):
        values = [2, 4, 6, 8]
        assert summarize(values) == Histogram.of(values).summary()

    def test_render_summary_rows_scales_values_not_count(self):
        rows = render_summary_rows({"t": summarize([0.5, 1.5])}, scale=1000.0)
        (row,) = rows
        assert row[0] == "t"
        assert row[1] == 2  # count unscaled
        assert row[2] == pytest.approx(500.0)  # min scaled to ms


class TestRecorderHistograms:
    def test_observe_accumulates(self):
        recorder = Recorder(enabled=True)
        recorder.observe("bits", 10)
        recorder.observe("bits", 30)
        assert recorder.histograms["bits"].count == 2
        assert recorder.histograms["bits"].sum == 40

    def test_timer_records_elapsed_seconds(self):
        recorder = Recorder(enabled=True, clock=FakeClock(step=2.0))
        with recorder.time("encode"):
            pass
        summary = recorder.timers["encode"].summary()
        assert summary["count"] == 1
        assert summary["max"] == pytest.approx(2.0)

    def test_timer_records_on_exception(self):
        recorder = Recorder(enabled=True, clock=FakeClock())
        with pytest.raises(RuntimeError):
            with recorder.time("failing"):
                raise RuntimeError("boom")
        assert recorder.timers["failing"].count == 1

    def test_summaries_views(self):
        recorder = Recorder(enabled=True, clock=FakeClock())
        recorder.observe("h", 1)
        with recorder.time("t"):
            pass
        assert recorder.histogram_summaries()["h"]["count"] == 1
        assert recorder.timer_summaries()["t"]["count"] == 1

    def test_render_summary_includes_metric_tables(self):
        recorder = Recorder(enabled=True, clock=FakeClock())
        recorder.observe("congest.round_bits", 64)
        with recorder.time("solve"):
            pass
        text = recorder.render_summary()
        assert "Histograms" in text
        assert "congest.round_bits" in text
        assert "Timers (ms)" in text
        assert "solve" in text


class TestDisabledNoOp:
    def test_observe_records_nothing(self):
        recorder = Recorder()
        recorder.observe("bits", 10)
        assert recorder.histograms == {}

    def test_time_returns_shared_null_span(self):
        recorder = Recorder()
        assert recorder.time("anything") is NULL_SPAN
        with recorder.time("anything"):
            pass
        assert recorder.timers == {}

    def test_reset_clears_metrics(self):
        recorder = Recorder(enabled=True)
        recorder.observe("h", 1)
        with recorder.time("t"):
            pass
        recorder.reset()
        assert recorder.histograms == {}
        assert recorder.timers == {}


class TestClearClosed:
    def test_clears_data_and_keeps_open_spans(self):
        recorder = Recorder(enabled=True, clock=FakeClock())
        with recorder.span("outer"):
            with recorder.span("closed_child"):
                recorder.incr("bits", 5)
                recorder.observe("h", 1)
            recorder.clear_closed()
            assert recorder.counters == {}
            assert recorder.histograms == {}
            # The open span survives as the new root and keeps working.
            assert [span.name for span in recorder.spans] == ["outer"]
            with recorder.span("after"):
                pass
        assert [span.name for span in recorder.spans] == ["outer", "after"]
        assert recorder.spans[1].parent == recorder.spans[0].index
        assert recorder.spans[1].depth == 1

    def test_safe_with_no_open_spans(self):
        recorder = Recorder(enabled=True)
        recorder.incr("bits", 1)
        recorder.clear_closed()
        assert recorder.counters == {}
        assert recorder.spans == []


class TestEventsFlow:
    def test_flush_emits_hist_and_timer_events(self):
        recorder = Recorder(enabled=True, clock=FakeClock())
        sink = InMemorySink()
        recorder.add_sink(sink)
        recorder.observe("congest.round_bits", 12)
        with recorder.time("phase"):
            pass
        recorder.flush()
        by_type = {event["type"]: event for event in sink.events}
        assert by_type["hist"]["name"] == "congest.round_bits"
        assert by_type["hist"]["count"] == 1
        assert by_type["hist"]["max"] == 12
        assert by_type["timer"]["name"] == "phase"
        assert by_type["timer"]["count"] == 1

    def test_jsonl_round_trip_renders_metric_tables(self, tmp_path):
        from repro.obs.sinks import JsonlSink
        from repro.obs.stats import load_events, render_stats

        recorder = Recorder(enabled=True, clock=FakeClock())
        sink = JsonlSink(tmp_path / "events.jsonl")
        recorder.add_sink(sink)
        recorder.observe("cut_bits", 100)
        with recorder.time("round"):
            pass
        recorder.flush()
        sink.close()
        events = load_events(tmp_path / "events.jsonl")
        text = render_stats(events)
        assert "Histograms" in text
        assert "cut_bits" in text
        assert "Timers (ms)" in text
        assert "round" in text

    def test_global_recording_captures_histograms(self):
        with obs.recording() as recorder:
            obs.get_recorder().observe("x", 3)
        assert recorder.histograms["x"].count == 1
