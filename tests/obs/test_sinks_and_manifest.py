"""Tests for JSONL sinks, stats replay, run manifests, and bench publish."""

import json

import pytest

from repro import obs
from repro.obs import (
    Recorder,
    SCHEMA_VERSION,
    build_manifest,
    ensure_json_native,
    load_manifest,
    run_provenance,
    write_manifest,
)
from repro.obs.sinks import JsonlSink
from repro.obs.stats import (
    load_events,
    load_events_tolerant,
    render_stats,
    render_stats_file,
)


def _record_sample_run(path):
    recorder = Recorder(enabled=True)
    sink = JsonlSink(path)
    recorder.add_sink(sink)
    with recorder.span("pipeline", t=2):
        with recorder.span("solve"):
            recorder.incr("maxis.exact.solves", 3)
        recorder.incr_keyed("congest.edge_bits", "a->b", 16)
        recorder.gauge("nodes", 12)
    recorder.flush()
    sink.close()
    return recorder


class TestJsonlRoundTrip:
    def test_first_line_is_meta_with_schema_version(self, tmp_path):
        path = tmp_path / "events.jsonl"
        _record_sample_run(path)
        first = json.loads(path.read_text().splitlines()[0])
        assert first == {"type": "meta", "schema_version": SCHEMA_VERSION}

    def test_events_replay_into_tables(self, tmp_path):
        path = tmp_path / "events.jsonl"
        _record_sample_run(path)
        events = load_events(path)
        types = {event["type"] for event in events}
        assert types == {"meta", "span", "counter", "gauge"}
        text = render_stats(events)
        assert "Spans" in text
        assert "pipeline" in text
        assert "maxis.exact.solves" in text
        assert "a->b" in text
        assert f"schema_version: {SCHEMA_VERSION}" in text

    def test_render_stats_file_reads_path(self, tmp_path):
        path = tmp_path / "events.jsonl"
        _record_sample_run(path)
        assert "Counters" in render_stats_file(path)

    def test_malformed_line_is_an_error(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "meta", "schema_version": 1}\nnot json\n')
        with pytest.raises(ValueError, match="not JSON"):
            load_events(path)


class TestTolerantLoading:
    def test_tolerant_loader_skips_malformed_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"type": "meta", "schema_version": 2}\n'
            "not json\n"
            '{"type": "counter", "name": "bits", "value": 3}\n'
            '{"type": "gauge", "name": "truncat'  # mid-write crash
        )
        events, malformed = load_events_tolerant(path)
        assert malformed == 2
        assert [event["type"] for event in events] == ["meta", "counter"]

    def test_tolerant_loader_skips_non_object_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('[1, 2]\n"string"\n')
        events, malformed = load_events_tolerant(path)
        assert events == []
        assert malformed == 2

    def test_empty_file_yields_no_events(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert load_events_tolerant(path) == ([], 0)

    def test_render_stats_reports_malformed_count(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"type": "counter", "name": "bits", "value": 1}\ngarbage\n'
        )
        text = render_stats_file(path)
        assert "skipped 1 malformed line(s)" in text
        assert "bits" in text

    def test_render_stats_clean_file_has_no_warning(self, tmp_path):
        path = tmp_path / "events.jsonl"
        _record_sample_run(path)
        assert "malformed" not in render_stats_file(path)


class TestManifest:
    def test_build_manifest_shape(self):
        recorder = Recorder(enabled=True)
        with recorder.span("phase"):
            recorder.incr("bits", 5)
        manifest = build_manifest(
            "my_bench", parameters={"ell": 2}, recorder=recorder, extra={"note": "x"}
        )
        assert manifest["schema_version"] == SCHEMA_VERSION
        assert manifest["name"] == "my_bench"
        assert manifest["parameters"] == {"ell": 2}
        assert manifest["counters"] == {"bits": 5}
        assert manifest["spans"]["phase"]["count"] == 1
        assert manifest["extra"] == {"note": "x"}

    def test_disabled_recorder_yields_empty_sections(self):
        manifest = build_manifest("idle", recorder=Recorder())
        assert manifest["counters"] == {}
        assert manifest["spans"] == {}

    def test_write_and_load_round_trip(self, tmp_path):
        path = write_manifest(
            tmp_path / "run.json", "run", parameters={"seed": 1}, recorder=Recorder()
        )
        manifest = load_manifest(path)
        assert manifest["name"] == "run"
        assert manifest["parameters"] == {"seed": 1}

    def test_load_rejects_non_manifest(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text("{}")
        with pytest.raises(ValueError, match="schema_version"):
            load_manifest(path)

    def test_manifest_carries_provenance(self):
        manifest = build_manifest("run", recorder=Recorder())
        provenance = manifest["provenance"]
        assert set(provenance) == {"git_sha", "hostname", "python_version"}
        assert provenance["git_sha"]
        assert provenance["python_version"].count(".") == 2
        assert manifest["provenance"] == run_provenance()

    def test_manifest_carries_histogram_and_timer_sections(self):
        recorder = Recorder(enabled=True)
        recorder.observe("congest.round_bits", 8)
        manifest = build_manifest("run", recorder=recorder)
        assert manifest["histograms"]["congest.round_bits"]["count"] == 1
        assert manifest["timers"] == {}

    def test_manifest_rejects_non_json_native_parameters(self):
        with pytest.raises(TypeError, match="parameters"):
            build_manifest(
                "run", parameters={"path": object()}, recorder=Recorder()
            )
        with pytest.raises(TypeError, match="extra"):
            build_manifest("run", recorder=Recorder(), extra={"s": {1, 2}})

    def test_ensure_json_native_accepts_nested_native_values(self):
        ensure_json_native(
            {"a": [1, 2.5, None, True, "x"], "b": {"c": (1, 2)}}, "value"
        )

    def test_ensure_json_native_rejects_non_string_keys(self):
        with pytest.raises(TypeError, match="key"):
            ensure_json_native({1: "x"}, "value")


class TestProvenanceDegradation:
    """Provenance must degrade to "unknown", never raise or omit."""

    def test_git_sha_unknown_when_git_is_missing(self, monkeypatch):
        import subprocess

        from repro.obs import manifest as manifest_mod

        def no_git(*args, **kwargs):
            raise OSError("git not found")

        monkeypatch.setattr(subprocess, "run", no_git)
        manifest_mod._git_sha.cache_clear()
        try:
            provenance = run_provenance()
            assert provenance["git_sha"] == "unknown"
        finally:
            manifest_mod._git_sha.cache_clear()

    def test_git_sha_unknown_outside_a_checkout(self, monkeypatch):
        import subprocess

        from repro.obs import manifest as manifest_mod

        real_run = subprocess.run

        def not_a_repo(cmd, **kwargs):
            result = real_run(["false"], capture_output=True)
            result.stdout = "fatal: not a git repository"
            return result

        monkeypatch.setattr(subprocess, "run", not_a_repo)
        manifest_mod._git_sha.cache_clear()
        try:
            assert run_provenance()["git_sha"] == "unknown"
        finally:
            manifest_mod._git_sha.cache_clear()

    def test_hostname_unknown_when_lookup_fails(self, monkeypatch):
        import socket

        def no_hostname():
            raise OSError("no hostname")

        monkeypatch.setattr(socket, "gethostname", no_hostname)
        assert run_provenance()["hostname"] == "unknown"

    def test_empty_hostname_becomes_unknown(self, monkeypatch):
        import socket

        monkeypatch.setattr(socket, "gethostname", lambda: "")
        assert run_provenance()["hostname"] == "unknown"

    def test_degraded_manifest_still_builds_and_loads(self, tmp_path, monkeypatch):
        import socket
        import subprocess

        from repro.obs import manifest as manifest_mod

        def no_git(*args, **kwargs):
            raise OSError("no git")

        monkeypatch.setattr(subprocess, "run", no_git)
        monkeypatch.setattr(socket, "gethostname", lambda: "")
        manifest_mod._git_sha.cache_clear()
        try:
            path = write_manifest(tmp_path / "run.json", "run", recorder=Recorder())
            provenance = load_manifest(path)["provenance"]
            assert provenance["git_sha"] == "unknown"
            assert provenance["hostname"] == "unknown"
        finally:
            manifest_mod._git_sha.cache_clear()


class TestBenchPublish:
    def test_publish_writes_text_and_manifest_sidecar(self, tmp_path, monkeypatch, capsys):
        import benchmarks._util as util

        monkeypatch.setattr(util, "RESULTS_DIR", tmp_path)
        path = util.publish("demo", "hello table", parameters={"t": 2})
        assert path == tmp_path / "demo.txt"
        assert path.read_text() == "hello table\n"
        manifest = json.loads((tmp_path / "demo.json").read_text())
        assert manifest["schema_version"] == SCHEMA_VERSION
        assert manifest["parameters"] == {"t": 2}
        assert manifest["extra"]["artifact"] == "demo.txt"
        assert "demo.txt" in capsys.readouterr().out

    def test_publish_captures_recorder_counters(self, tmp_path, monkeypatch):
        import benchmarks._util as util

        monkeypatch.setattr(util, "RESULTS_DIR", tmp_path)
        with obs.recording():
            obs.get_recorder().incr("congest.bits", 99)
        util.publish("counted", "text")
        manifest = json.loads((tmp_path / "counted.json").read_text())
        assert manifest["counters"]["congest.bits"] == 99

    def test_publish_drains_recorder_between_benches(self, tmp_path, monkeypatch):
        import benchmarks._util as util

        monkeypatch.setattr(util, "RESULTS_DIR", tmp_path)
        with obs.recording():
            obs.get_recorder().incr("congest.bits", 7)
        util.publish("first", "text")
        util.publish("second", "text")
        second = json.loads((tmp_path / "second.json").read_text())
        assert second["counters"] == {}

    def test_publish_drains_even_while_span_is_open(self, tmp_path, monkeypatch):
        # Regression: publish used to call reset(), which raises while a
        # span is open; the swallowed error leaked counters into every
        # subsequent manifest.
        import benchmarks._util as util

        monkeypatch.setattr(util, "RESULTS_DIR", tmp_path)
        with obs.recording():
            recorder = obs.get_recorder()
            with recorder.span("suite"):
                recorder.incr("congest.bits", 7)
                recorder.observe("congest.round_bits", 12)
                util.publish("first", "text")
                util.publish("second", "text")
        first = json.loads((tmp_path / "first.json").read_text())
        second = json.loads((tmp_path / "second.json").read_text())
        assert first["counters"] == {"congest.bits": 7}
        assert first["histograms"]["congest.round_bits"]["count"] == 1
        assert second["counters"] == {}
        assert second["histograms"] == {}
