"""Unit tests for the request-tracing core (repro.obs.reqtrace)."""

import json

import pytest

from repro.obs.export import chrome_trace, dump_trace
from repro.obs.reqtrace import (
    RequestTrace,
    TraceBuffer,
    current_trace,
    format_traceparent,
    mint_span_id,
    mint_trace_id,
    parse_traceparent,
    trace_region,
    using_trace,
)

VALID_TRACE_ID = "af" * 16
VALID_SPAN_ID = "b7" * 8
VALID = f"00-{VALID_TRACE_ID}-{VALID_SPAN_ID}-01"


class TestParseTraceparent:
    def test_valid_header_parses(self):
        context = parse_traceparent(VALID)
        assert context is not None
        assert context.trace_id == VALID_TRACE_ID
        assert context.span_id == VALID_SPAN_ID
        assert context.sampled is True

    def test_unsampled_flags(self):
        context = parse_traceparent(f"00-{VALID_TRACE_ID}-{VALID_SPAN_ID}-00")
        assert context is not None
        assert context.sampled is False

    def test_surrounding_whitespace_tolerated(self):
        assert parse_traceparent(f"  {VALID}  ") is not None

    @pytest.mark.parametrize(
        "header",
        [
            None,
            "",
            "garbage",
            "00",
            f"00-{VALID_TRACE_ID}",
            f"00-{VALID_TRACE_ID}-{VALID_SPAN_ID}",  # missing flags
            f"00-{VALID_TRACE_ID}-{VALID_SPAN_ID}-01-extra",
            f"01-{VALID_TRACE_ID}-{VALID_SPAN_ID}-01",  # wrong version
            f"ff-{VALID_TRACE_ID}-{VALID_SPAN_ID}-01",
            f"00-{VALID_TRACE_ID[:-2]}-{VALID_SPAN_ID}-01",  # truncated trace
            f"00-{VALID_TRACE_ID}-{VALID_SPAN_ID[:-2]}-01",  # truncated span
            f"00-{VALID_TRACE_ID.upper()}-{VALID_SPAN_ID}-01",  # uppercase
            f"00-{'g' * 32}-{VALID_SPAN_ID}-01",  # non-hex
            f"00-{'0' * 32}-{VALID_SPAN_ID}-01",  # all-zero trace id
            f"00-{VALID_TRACE_ID}-{'0' * 16}-01",  # all-zero span id
            f"00-{VALID_TRACE_ID}-{VALID_SPAN_ID}-0",  # short flags
            f"00-{VALID_TRACE_ID}-{VALID_SPAN_ID}-zz",  # non-hex flags
        ],
    )
    def test_malformed_headers_return_none(self, header):
        assert parse_traceparent(header) is None

    def test_format_round_trips(self):
        header = format_traceparent(VALID_TRACE_ID, VALID_SPAN_ID)
        context = parse_traceparent(header)
        assert (context.trace_id, context.span_id) == (
            VALID_TRACE_ID,
            VALID_SPAN_ID,
        )

    def test_minted_ids_parse(self):
        header = format_traceparent(mint_trace_id(), mint_span_id())
        assert parse_traceparent(header) is not None


class TestRequestTrace:
    def test_root_span_and_finish(self):
        trace = RequestTrace(endpoint="GET /health", method="GET", path="/health")
        trace.finish(status=200, disposition="cache_hit")
        assert trace.status == 200
        assert trace.disposition == "cache_hit"
        assert trace.spans[0].name == "request"
        assert trace.spans[0].attrs["status"] == 200
        assert not trace.is_error

    def test_finish_is_idempotent(self):
        trace = RequestTrace()
        trace.finish(status=200)
        trace.finish(status=500, error="late")
        assert trace.status == 200
        assert trace.error is None

    def test_child_spans_default_to_root_parent(self):
        trace = RequestTrace()
        with trace.span("store.lookup") as span:
            span.set(outcome="miss")
        record = trace.spans[-1]
        assert record.parent_id == trace.root_span_id
        assert record.attrs["outcome"] == "miss"
        assert record.duration_s >= 0.0

    def test_explicit_parent_nesting(self):
        trace = RequestTrace()
        with trace.span("execute.maxis_solve") as outer:
            inner_id = trace.add_span(
                "maxis.exact.search", start_s=0.0, duration_s=0.5,
                parent_id=outer.span_id,
            )
        by_id = {span.span_id: span for span in trace.spans}
        assert by_id[inner_id].parent_id == outer.span_id

    def test_graft_recorder_spans_rebases_parents(self):
        trace = RequestTrace()
        with trace.span("execute.gadget_graph") as execute:
            parent_id = execute.span_id
        events = [
            {"index": 7, "parent": None, "name": "outer", "start_s": 1.0,
             "duration_s": 2.0, "params": {"a": 1}},
            {"index": 8, "parent": 7, "name": "inner", "start_s": 1.5,
             "duration_s": 0.5, "params": {}},
        ]
        assert trace.graft_recorder_spans(events, parent_id=parent_id) == 2
        outer = next(s for s in trace.spans if s.name == "outer")
        inner = next(s for s in trace.spans if s.name == "inner")
        assert outer.parent_id == parent_id
        assert inner.parent_id == outer.span_id
        assert outer.attrs == {"a": 1}

    def test_span_total_ms_matches_prefix(self):
        trace = RequestTrace()
        trace.add_span("dispatch.queue", start_s=0.0, duration_s=0.25)
        assert trace.span_total_ms("dispatch.queue") == pytest.approx(250.0)
        assert trace.span_total_ms("missing") is None

    def test_links_surface_in_summary_and_document(self):
        trace = RequestTrace()
        trace.link("ab" * 16, "cd" * 8, "coalesced_with")
        trace.finish(status=200)
        assert trace.summary()["links"] == [
            {"trace_id": "ab" * 16, "span_id": "cd" * 8,
             "relation": "coalesced_with"}
        ]
        assert trace.to_document()["links"] == trace.summary()["links"]

    def test_is_error_classification(self):
        errored = RequestTrace()
        errored.finish(status=500, error="boom")
        assert errored.is_error
        client_error = RequestTrace()
        client_error.finish(status=404)
        assert not client_error.is_error

    def test_span_events_are_chrome_exportable_and_deterministic(self):
        trace = RequestTrace(endpoint="POST /v1/maxis", method="POST",
                             path="/v1/maxis")
        with trace.span("execute.maxis_solve"):
            pass
        trace.finish(status=200, disposition="computed")
        one = dump_trace(chrome_trace(trace.span_events()))
        two = dump_trace(chrome_trace(trace.span_events()))
        assert one == two
        document = json.loads(one)
        names = [e["name"] for e in document["traceEvents"] if e["ph"] == "X"]
        assert "request" in names and "execute.maxis_solve" in names


class TestAmbientContext:
    def test_current_trace_defaults_to_none(self):
        assert current_trace() is None

    def test_using_trace_binds_and_restores(self):
        trace = RequestTrace()
        with using_trace(trace):
            assert current_trace() is trace
            with using_trace(None):
                assert current_trace() is None
            assert current_trace() is trace
        assert current_trace() is None

    def test_trace_region_is_noop_without_trace(self):
        with trace_region("anything") as span:
            assert span is None

    def test_trace_region_records_on_ambient_trace(self):
        trace = RequestTrace()
        with using_trace(trace):
            with trace_region("store.lookup", outcome="hit") as span:
                assert span is not None
        assert trace.spans[-1].name == "store.lookup"
        assert trace.spans[-1].attrs["outcome"] == "hit"


def _finished(duration_ms=1.0, status=200, error=None):
    trace = RequestTrace()
    trace._root.duration_s = duration_ms / 1000.0
    trace._finished = True
    trace.status = status
    trace.error = error
    return trace


class TestTraceBuffer:
    def test_lookup_by_id(self):
        buffer = TraceBuffer(capacity=4, slow_ms=100.0)
        trace = _finished()
        buffer.admit(trace)
        assert buffer.get(trace.trace_id) is trace
        assert buffer.get("nope" * 8) is None

    def test_routine_traffic_cannot_evict_interesting(self):
        buffer = TraceBuffer(capacity=2, slow_ms=100.0)
        slow = _finished(duration_ms=250.0)
        errored = _finished(status=500)
        buffer.admit(slow)
        buffer.admit(errored)
        for _ in range(50):
            buffer.admit(_finished(duration_ms=1.0))
        assert buffer.get(slow.trace_id) is slow
        assert buffer.get(errored.trace_id) is errored
        stats = buffer.stats()
        assert stats["routine"] == 2
        assert stats["interesting"] == 2
        assert stats["evicted"] == 48

    def test_interesting_tier_is_bounded_too(self):
        buffer = TraceBuffer(capacity=3, slow_ms=0.0)  # everything is slow
        traces = [_finished(duration_ms=10.0) for _ in range(5)]
        for trace in traces:
            buffer.admit(trace)
        assert buffer.get(traces[0].trace_id) is None
        assert buffer.get(traces[-1].trace_id) is traces[-1]

    def test_summaries_newest_first(self):
        buffer = TraceBuffer(capacity=8)
        first, second = _finished(), _finished()
        second.started_unix_s = first.started_unix_s + 10.0
        buffer.admit(first)
        buffer.admit(second)
        ids = [s["trace_id"] for s in buffer.summaries()]
        assert ids == [second.trace_id, first.trace_id]
        assert len(buffer.summaries(limit=1)) == 1

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            TraceBuffer(capacity=0)
