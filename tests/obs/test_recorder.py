"""Tests for the observability recorder: spans, counters, no-op guarantee."""

import pytest

from repro import obs
from repro.obs import InMemorySink, Recorder
from repro.obs.recorder import NULL_SPAN


class FakeClock:
    """Deterministic clock: each read advances by ``step`` seconds."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class TestDisabledIsNoOp:
    def test_span_returns_shared_null_context(self):
        recorder = Recorder()
        assert recorder.span("anything", key=1) is NULL_SPAN
        assert recorder.span("other") is NULL_SPAN

    def test_nothing_is_recorded(self):
        recorder = Recorder()
        with recorder.span("phase"):
            recorder.incr("counter", 5)
            recorder.incr_keyed("keyed", "a", 2)
            recorder.gauge("gauge", 7)
        assert recorder.spans == []
        assert recorder.counters == {}
        assert recorder.keyed_counters == {}
        assert recorder.gauges == {}

    def test_global_recorder_disabled_by_default(self):
        assert obs.is_enabled() is False


class TestSpans:
    def test_nesting_records_parent_and_depth(self):
        recorder = Recorder(enabled=True, clock=FakeClock())
        with recorder.span("outer"):
            with recorder.span("inner", side="left"):
                pass
            with recorder.span("inner", side="right"):
                pass
        outer, left, right = recorder.spans
        assert (outer.name, outer.parent, outer.depth) == ("outer", None, 0)
        assert (left.parent, left.depth) == (outer.index, 1)
        assert (right.parent, right.depth) == (outer.index, 1)
        assert left.params == {"side": "left"}

    def test_durations_come_from_the_clock(self):
        recorder = Recorder(enabled=True, clock=FakeClock(step=1.0))
        with recorder.span("timed"):
            pass
        # Clock reads: start=0, end=1.
        assert recorder.spans[0].duration_s == pytest.approx(1.0)

    def test_span_closes_on_exception(self):
        recorder = Recorder(enabled=True, clock=FakeClock())
        with pytest.raises(RuntimeError):
            with recorder.span("failing"):
                raise RuntimeError("boom")
        assert recorder.spans[0].duration_s > 0
        with recorder.span("after"):
            pass
        assert recorder.spans[1].depth == 0

    def test_aggregates_by_name(self):
        recorder = Recorder(enabled=True, clock=FakeClock())
        for _ in range(3):
            with recorder.span("repeat"):
                pass
        count, total = recorder.span_aggregates()["repeat"]
        assert count == 3
        assert total == pytest.approx(3.0)

    def test_tree_render_merges_siblings(self):
        recorder = Recorder(enabled=True, clock=FakeClock())
        with recorder.span("root"):
            with recorder.span("child"):
                pass
            with recorder.span("child"):
                pass
        text = recorder.render_span_tree()
        assert "root" in text
        assert "child x2" in text

    def test_empty_tree_renders_placeholder(self):
        assert "no spans" in Recorder(enabled=True).render_span_tree()


class TestSpanTreeAccessors:
    def _recorder(self):
        recorder = Recorder(enabled=True, clock=FakeClock())
        with recorder.span("outer"):
            with recorder.span("inner"):
                pass
        with recorder.span("second"):
            pass
        return recorder

    def test_span_children_is_the_adjacency_view(self):
        recorder = self._recorder()
        outer, inner, second = recorder.spans
        children = recorder.span_children()
        assert children[None] == [outer, second]
        assert children[outer.index] == [inner]

    def test_root_spans_are_the_parentless_records(self):
        recorder = self._recorder()
        assert [record.name for record in recorder.root_spans()] == [
            "outer",
            "second",
        ]

    def test_local_spans_live_on_the_in_process_track(self):
        recorder = self._recorder()
        assert all(record.track is None for record in recorder.spans)
        assert recorder.span_tracks() == [None]

    def test_to_dict_carries_the_track_field(self):
        recorder = self._recorder()
        event = recorder.spans[0].to_dict()
        assert "track" in event
        assert event["track"] is None


class TestCountersAndGauges:
    def test_incr_accumulates(self):
        recorder = Recorder(enabled=True)
        recorder.incr("bits", 8)
        recorder.incr("bits", 4)
        assert recorder.counters["bits"] == 12

    def test_keyed_counters_accumulate_per_key(self):
        recorder = Recorder(enabled=True)
        recorder.incr_keyed("edge_bits", "a->b", 3)
        recorder.incr_keyed("edge_bits", "a->b", 2)
        recorder.incr_keyed("edge_bits", "b->a", 1)
        assert recorder.keyed_counters["edge_bits"] == {"a->b": 5, "b->a": 1}

    def test_gauge_last_write_wins(self):
        recorder = Recorder(enabled=True)
        recorder.gauge("nodes", 10)
        recorder.gauge("nodes", 20)
        assert recorder.gauges["nodes"] == 20

    def test_summary_renders_tables(self):
        recorder = Recorder(enabled=True, clock=FakeClock())
        with recorder.span("phase"):
            recorder.incr("congest.bits", 42)
            recorder.gauge("width", 3)
            recorder.incr_keyed("edge", "u->v", 9)
        text = recorder.render_summary()
        assert "Spans" in text
        assert "congest.bits" in text
        assert "42" in text
        assert "u->v" in text


class TestLifecycle:
    def test_reset_refuses_open_spans(self):
        recorder = Recorder(enabled=True)
        span = recorder.span("open")
        span.__enter__()
        with pytest.raises(RuntimeError):
            recorder.reset()
        span.__exit__(None, None, None)
        recorder.reset()
        assert recorder.spans == []

    def test_sinks_receive_spans_and_flush(self):
        recorder = Recorder(enabled=True, clock=FakeClock())
        sink = InMemorySink()
        recorder.add_sink(sink)
        with recorder.span("observed"):
            recorder.incr("count", 1)
        recorder.flush()
        types = [event["type"] for event in sink.events]
        assert types == ["span", "counter"]
        assert sink.events[0]["name"] == "observed"

    def test_recording_context_enables_and_restores(self):
        recorder = obs.get_recorder()
        assert not recorder.enabled
        with obs.recording() as active:
            assert active is recorder
            assert recorder.enabled
            recorder.incr("inside", 1)
        assert not recorder.enabled
        # Data survives the block for rendering...
        assert recorder.counters["inside"] == 1
        # ...and the next recording block starts clean.
        with obs.recording():
            pass
        assert recorder.counters == {}
