"""Connectivity and diameter of the hard instances.

The paper notes its bounds hold "even for constant diameter graphs".
The linear construction is always connected with small diameter.  The
quadratic construction's two halves are joined only by *input* edges,
so degenerate inputs (all-ones: no zero bits at all) disconnect it —
documented here — while promise-respecting sampled inputs keep it
connected with constant diameter.
"""

import random

import pytest

from repro.commcc import (
    BitString,
    pairwise_disjoint_inputs,
    uniquely_intersecting_inputs,
)
from repro.gadgets import (
    GadgetParameters,
    LinearConstruction,
    QuadraticConstruction,
)


class TestLinearDiameter:
    @pytest.mark.parametrize(
        "params",
        [
            GadgetParameters(ell=2, alpha=1, t=2),
            GadgetParameters(ell=3, alpha=1, t=2),
            GadgetParameters(ell=2, alpha=1, t=3),
        ],
        ids=repr,
    )
    def test_fixed_graph_connected_constant_diameter(self, params):
        construction = LinearConstruction(params)
        assert construction.graph.is_connected()
        assert construction.graph.diameter() <= 4

    def test_weights_do_not_change_topology(self, figure_params):
        construction = LinearConstruction(figure_params)
        inputs = uniquely_intersecting_inputs(
            figure_params.k, 2, rng=random.Random(0)
        )
        graph = construction.apply_inputs(inputs)
        assert graph.diameter() == construction.graph.diameter()


class TestQuadraticConnectivity:
    def test_fixed_graph_is_two_components(self, quadratic_fig):
        """Before input edges, G^1 and G^2 are separate components."""
        components = quadratic_fig.graph.connected_components()
        assert len(components) == 2

    def test_all_ones_inputs_stay_disconnected(self, quadratic_fig, figure_params):
        """The degenerate all-ones input adds no edges at all."""
        k = figure_params.k
        graph = quadratic_fig.apply_inputs([BitString.ones(k * k)] * 2)
        assert not graph.is_connected()

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("intersecting", [True, False])
    def test_sampled_promise_inputs_connect_with_constant_diameter(
        self, quadratic_fig, figure_params, seed, intersecting
    ):
        k = figure_params.k
        gen = (
            uniquely_intersecting_inputs if intersecting else pairwise_disjoint_inputs
        )
        inputs = gen(k * k, 2, rng=random.Random(seed))
        graph = quadratic_fig.apply_inputs(inputs)
        assert graph.is_connected()
        assert graph.diameter() <= 8

    def test_single_zero_bit_connects(self, quadratic_fig, figure_params):
        k = figure_params.k
        length = k * k
        x0 = BitString.ones(length) ^ BitString.from_indices(length, [0])
        graph = quadratic_fig.apply_inputs([x0, BitString.ones(length)])
        assert graph.is_connected()
