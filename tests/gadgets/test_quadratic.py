"""Tests for the quadratic construction F and family F_x (Section 5, Figs 4-6)."""

import random

import pytest

from repro.commcc import (
    BitString,
    index_pair_to_flat,
    pairwise_disjoint_inputs,
    uniquely_intersecting_inputs,
)
from repro.framework import cut_size
from repro.gadgets import GadgetParameters, QuadraticConstruction, QuadraticMaxISFamily


class TestFixedGraph:
    def test_node_count(self, quadratic_fig, figure_params):
        assert quadratic_fig.graph.num_nodes == figure_params.quadratic_nodes == 48

    def test_fixed_weights(self, quadratic_fig, figure_params):
        """w_F: ell on every A node, 1 on every code node (Section 5.1)."""
        ell = figure_params.ell
        for b in (0, 1):
            for i in range(figure_params.t):
                layout = quadratic_fig.layouts[b][i]
                for node in layout.a_nodes:
                    assert quadratic_fig.graph.weight(node) == ell
                for node in layout.all_code_nodes():
                    assert quadratic_fig.graph.weight(node) == 1

    def test_partition_groups_both_copies_per_player(self, quadratic_fig):
        parts = quadratic_fig.partition()
        assert len(parts) == 2
        part0 = parts[0]
        assert quadratic_fig.a_node(0, 0, 0) in part0
        assert quadratic_fig.a_node(0, 1, 0) in part0
        assert quadratic_fig.a_node(1, 0, 0) not in part0

    def test_no_fixed_edges_between_copies(self, quadratic_fig, figure_params):
        """Before inputs, G^1 and G^2 are disconnected from each other."""
        for u in quadratic_fig.player_nodes(0) + quadratic_fig.player_nodes(1):
            for v in quadratic_fig.graph.neighbors(u):
                # ("A", i, b, m) / ("C", i, b, h, r): copy is index 2.
                assert u[2] == v[2]

    def test_intercopy_wiring_inside_each_copy(self, quadratic_fig, figure_params):
        q = figure_params.q
        for b in (0, 1):
            for h in range(q):
                for r in range(q):
                    u = quadratic_fig.layouts[b][0].code_node(h, r)
                    for s in range(q):
                        v = quadratic_fig.layouts[b][1].code_node(h, s)
                        assert quadratic_fig.graph.has_edge(u, v) == (r != s)

    def test_cut_matches_closed_form(self, quadratic_fig):
        measured = cut_size(quadratic_fig.graph, quadratic_fig.partition())
        assert measured == quadratic_fig.expected_cut_size()
        # Exactly twice the per-copy wiring.
        assert measured == 2 * 18

    def test_groups_for_rendering(self, quadratic_fig):
        groups = quadratic_fig.groups()
        assert "A^(0,0)" in groups and "Code^(1,1)" in groups
        assert len(groups) == 8


class TestApplyInputs:
    def _flat(self, m1, m2, k):
        return index_pair_to_flat(m1, m2, k)

    def test_figure6_edge_iff_bit_zero(self, quadratic_fig, figure_params):
        k = figure_params.k
        length = k * k
        # Player 0: only bit (0,0) cleared; player 1: all ones.
        x0 = BitString.ones(length) ^ BitString.from_indices(
            length, [self._flat(0, 0, k)]
        )
        x1 = BitString.ones(length)
        graph = quadratic_fig.apply_inputs([x0, x1])
        assert graph.has_edge(
            quadratic_fig.a_node(0, 0, 0), quadratic_fig.a_node(0, 1, 0)
        )
        assert not graph.has_edge(
            quadratic_fig.a_node(0, 0, 0), quadratic_fig.a_node(0, 1, 1)
        )
        for m1 in range(k):
            for m2 in range(k):
                assert not graph.has_edge(
                    quadratic_fig.a_node(1, 0, m1), quadratic_fig.a_node(1, 1, m2)
                )

    def test_all_zero_inputs_add_full_biclique(self, quadratic_fig, figure_params):
        k = figure_params.k
        inputs = [BitString.zeros(k * k)] * 2
        graph = quadratic_fig.apply_inputs(inputs)
        for i in range(2):
            for m1 in range(k):
                for m2 in range(k):
                    assert graph.has_edge(
                        quadratic_fig.a_node(i, 0, m1),
                        quadratic_fig.a_node(i, 1, m2),
                    )

    def test_input_edges_stay_within_player(self, quadratic_fig, figure_params):
        """Definition 4 condition 1: x^i only adds edges inside V^i."""
        k = figure_params.k
        inputs = [BitString.zeros(k * k)] * 2
        graph = quadratic_fig.apply_inputs(inputs)
        new_edges = graph.edge_set() - quadratic_fig.graph.edge_set()
        parts = quadratic_fig.partition()
        for edge in new_edges:
            u, v = tuple(edge)
            assert (u in parts[0]) == (v in parts[0])

    def test_fixed_graph_not_mutated(self, quadratic_fig, figure_params):
        k = figure_params.k
        baseline = quadratic_fig.graph.num_edges
        quadratic_fig.apply_inputs([BitString.zeros(k * k)] * 2)
        assert quadratic_fig.graph.num_edges == baseline

    def test_wrong_length_raises(self, quadratic_fig, figure_params):
        with pytest.raises(ValueError):
            quadratic_fig.apply_inputs([BitString.ones(figure_params.k)] * 2)

    def test_wrong_count_raises(self, quadratic_fig, figure_params):
        k = figure_params.k
        with pytest.raises(ValueError):
            quadratic_fig.apply_inputs([BitString.ones(k * k)])


class TestFamily:
    def test_shape(self, figure_params):
        family = QuadraticMaxISFamily(figure_params)
        assert family.num_players == 2
        assert family.input_length == figure_params.k ** 2

    def test_default_thresholds_are_paper_claims(self, figure_params):
        family = QuadraticMaxISFamily(figure_params)
        assert family.gap.high_threshold == figure_params.quadratic_high_threshold()
        assert family.gap.low_threshold == figure_params.quadratic_low_threshold()

    def test_custom_thresholds(self, figure_params):
        family = QuadraticMaxISFamily(
            figure_params, low_threshold=18.5, high_threshold=20
        )
        assert family.gap.is_meaningful

    def test_calibrated_predicate_matches_function(self, figure_params):
        """With a measured threshold the family separates at figure scale."""
        family = QuadraticMaxISFamily(
            figure_params, low_threshold=19, high_threshold=20
        )
        rng = random.Random(8)
        length = figure_params.k ** 2
        for intersecting in (True, False):
            gen = (
                uniquely_intersecting_inputs
                if intersecting
                else pairwise_disjoint_inputs
            )
            inputs = gen(length, 2, rng=rng)
            graph = family.build(inputs)
            assert family.predicate(graph) == family.function_value(inputs)

    def test_function_value(self, figure_params, rng):
        family = QuadraticMaxISFamily(figure_params)
        length = figure_params.k ** 2
        assert family.function_value(
            pairwise_disjoint_inputs(length, 2, rng=rng)
        )
