"""Hypothesis property tests for the quadratic construction."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.commcc import promise_inputs, uniquely_intersecting_inputs
from repro.gadgets import (
    GadgetParameters,
    QuadraticConstruction,
    quadratic_intersecting_witness,
)
from repro.maxis import max_weight_independent_set

_PARAMS = st.sampled_from(
    [
        GadgetParameters(ell=2, alpha=1, t=2),
        GadgetParameters(ell=3, alpha=1, t=2),
        GadgetParameters(ell=2, alpha=1, t=3),
    ]
)

_CONSTRUCTIONS = {}


def _construction(params):
    if params not in _CONSTRUCTIONS:
        _CONSTRUCTIONS[params] = QuadraticConstruction(params)
    return _CONSTRUCTIONS[params]


@settings(max_examples=20, deadline=None)
@given(params=_PARAMS, seed=st.integers(0, 10_000))
def test_claim7_disjoint_optimum_bounded(params, seed):
    construction = _construction(params)
    inputs = promise_inputs(
        params.k ** 2, params.t, intersecting=False, rng=random.Random(seed)
    )
    optimum = max_weight_independent_set(construction.apply_inputs(inputs)).weight
    assert optimum <= params.quadratic_low_threshold()


@settings(max_examples=20, deadline=None)
@given(params=_PARAMS, data=st.data())
def test_claim6_witness_for_any_common_pair(params, data):
    construction = _construction(params)
    m1 = data.draw(st.integers(0, params.k - 1))
    m2 = data.draw(st.integers(0, params.k - 1))
    seed = data.draw(st.integers(0, 10_000))
    flat = m1 * params.k + m2
    inputs = uniquely_intersecting_inputs(
        params.k ** 2, params.t, rng=random.Random(seed), common_index=flat
    )
    graph = construction.apply_inputs(inputs)
    witness = quadratic_intersecting_witness(construction, m1, m2)
    assert graph.is_independent_set(witness)
    assert graph.total_weight(witness) == params.quadratic_high_threshold()


@settings(max_examples=15, deadline=None)
@given(params=_PARAMS, seed=st.integers(0, 10_000))
def test_quadratic_gap_sides_never_cross(params, seed):
    construction = _construction(params)
    rng = random.Random(seed)
    length = params.k ** 2
    disjoint = promise_inputs(length, params.t, intersecting=False, rng=rng)
    intersecting = promise_inputs(length, params.t, intersecting=True, rng=rng)
    low = max_weight_independent_set(construction.apply_inputs(disjoint)).weight
    high = max_weight_independent_set(
        construction.apply_inputs(intersecting)
    ).weight
    assert low < high
