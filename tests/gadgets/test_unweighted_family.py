"""Tests for the Remark 1 family (fixed node set, edge-toggled replicas)."""

import random

import pytest

from repro.commcc import (
    BitString,
    pairwise_disjoint_inputs,
    uniquely_intersecting_inputs,
)
from repro.framework import (
    verify_locality,
    verify_partition,
    verify_predicate_matches_function,
)
from repro.gadgets import (
    GadgetParameters,
    LinearMaxISFamily,
    UnweightedLinearMaxISFamily,
)
from repro.maxis import max_weight_independent_set


@pytest.fixture(scope="module")
def params():
    return GadgetParameters(ell=3, alpha=1, t=2)


@pytest.fixture(scope="module")
def family(params):
    return UnweightedLinearMaxISFamily(params)


class TestStructure:
    def test_node_count_is_theta_k_ell(self, family, params):
        # t * (k * ell + q^2)
        expected = params.t * (params.k * params.ell + params.q ** 2)
        assert family.num_nodes == expected

    def test_replica_groups(self, family, params):
        group = family.replica_group(0, 1)
        assert len(group) == params.ell
        assert all(node[0] == "R" for node in group)

    def test_all_weights_one(self, family, params):
        graph = family.build([BitString.zeros(params.k)] * params.t)
        assert all(graph.weight(v) == 1 for v in graph.nodes())

    def test_zero_bit_makes_replica_clique(self, family, params):
        inputs = [BitString.zeros(params.k)] * params.t
        graph = family.build(inputs)
        assert graph.is_clique(family.replica_group(0, 0))

    def test_one_bit_makes_replica_independent(self, family, params):
        inputs = [BitString.ones(params.k)] * params.t
        graph = family.build(inputs)
        assert graph.is_independent_set(family.replica_group(0, 0))

    def test_partition_valid(self, family, params):
        graph = family.build([BitString.zeros(params.k)] * params.t)
        verify_partition(family, graph)


class TestEquivalenceWithWeighted:
    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("intersecting", [True, False])
    def test_optimum_matches_weighted_family(self, params, family, seed, intersecting):
        weighted = LinearMaxISFamily(params)
        gen = (
            uniquely_intersecting_inputs if intersecting else pairwise_disjoint_inputs
        )
        inputs = gen(params.k, params.t, rng=random.Random(seed))
        unweighted_opt = max_weight_independent_set(family.build(inputs)).weight
        weighted_opt = max_weight_independent_set(weighted.build(inputs)).weight
        assert unweighted_opt == weighted_opt


class TestDefinition4Conditions:
    def test_locality(self, family, params):
        rng = random.Random(5)
        base = pairwise_disjoint_inputs(params.k, params.t, rng=rng)
        variants = []
        for i in range(params.t):
            changed = list(base)
            changed[i] = BitString.from_indices(params.k, [rng.randrange(params.k)])
            variants.append(changed)
        verify_locality(family, base, variants)

    def test_condition2_on_meaningful_gap(self):
        # Needs ell > alpha * t for the claimed thresholds to separate.
        params = GadgetParameters(ell=4, alpha=1, t=3)
        family = UnweightedLinearMaxISFamily(params)
        rng = random.Random(6)
        samples = [
            uniquely_intersecting_inputs(params.k, params.t, rng=rng),
            pairwise_disjoint_inputs(params.k, params.t, rng=rng),
        ]
        verify_predicate_matches_function(family, samples)
