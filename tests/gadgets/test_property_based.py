"""Hypothesis property tests over the gadget families.

Sampled and exhaustive tests elsewhere pin specific parameters; here
hypothesis roams the (parameter, input) space and asserts the claims as
universal invariants.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.commcc import promise_inputs
from repro.gadgets import (
    GadgetParameters,
    LinearConstruction,
    linear_intersecting_witness,
    property2_matching_size,
)
from repro.maxis import max_weight_independent_set

# Small parameter space keeps each example fast while varying the shape.
_PARAMS = st.sampled_from(
    [
        GadgetParameters(ell=2, alpha=1, t=2),
        GadgetParameters(ell=3, alpha=1, t=2),
        GadgetParameters(ell=2, alpha=1, t=3),
        GadgetParameters(ell=4, alpha=1, t=3),
    ]
)

_CONSTRUCTIONS = {}


def _construction(params):
    if params not in _CONSTRUCTIONS:
        _CONSTRUCTIONS[params] = LinearConstruction(params)
    return _CONSTRUCTIONS[params]


@settings(max_examples=30, deadline=None)
@given(params=_PARAMS, seed=st.integers(0, 10_000))
def test_claim5_disjoint_optimum_bounded(params, seed):
    """Pairwise-disjoint inputs never exceed (t+1)l + a t^2."""
    construction = _construction(params)
    inputs = promise_inputs(
        params.k, params.t, intersecting=False, rng=random.Random(seed)
    )
    optimum = max_weight_independent_set(construction.apply_inputs(inputs)).weight
    assert optimum <= params.linear_low_threshold()


@settings(max_examples=30, deadline=None)
@given(params=_PARAMS, seed=st.integers(0, 10_000))
def test_claim3_intersecting_optimum_reaches_threshold(params, seed):
    """Uniquely-intersecting inputs always admit weight t(2l + a)."""
    construction = _construction(params)
    rng = random.Random(seed)
    common = rng.randrange(params.k)
    from repro.commcc import uniquely_intersecting_inputs

    inputs = uniquely_intersecting_inputs(
        params.k, params.t, rng=rng, common_index=common
    )
    graph = construction.apply_inputs(inputs)
    witness = linear_intersecting_witness(construction, common)
    assert graph.is_independent_set(witness)
    assert graph.total_weight(witness) >= params.linear_high_threshold()
    assert (
        max_weight_independent_set(graph).weight >= params.linear_high_threshold()
    )


@settings(max_examples=30, deadline=None)
@given(
    params=_PARAMS,
    data=st.data(),
)
def test_property2_matching_always_at_least_ell(params, data):
    construction = _construction(params)
    i = data.draw(st.integers(0, params.t - 2))
    j = data.draw(st.integers(i + 1, params.t - 1))
    m1 = data.draw(st.integers(0, params.k - 1))
    m2 = data.draw(
        st.integers(0, params.k - 1).filter(lambda m: m != m1)
    )
    assert property2_matching_size(construction, i, j, m1, m2) >= params.ell


@settings(max_examples=25, deadline=None)
@given(params=_PARAMS, seed=st.integers(0, 10_000), flip=st.booleans())
def test_gap_sides_never_cross(params, seed, flip):
    """The disjoint-side optimum never reaches the intersecting witness.

    This is the semantic heart of the family: the two promise sides are
    separated at *every* feasible parameter set, not just asymptotically
    (the claimed thresholds may touch, but the measured sides do not).
    """
    construction = _construction(params)
    rng = random.Random(seed)
    disjoint = promise_inputs(params.k, params.t, intersecting=False, rng=rng)
    intersecting = promise_inputs(params.k, params.t, intersecting=True, rng=rng)
    low = max_weight_independent_set(construction.apply_inputs(disjoint)).weight
    high = max_weight_independent_set(
        construction.apply_inputs(intersecting)
    ).weight
    assert low < high
