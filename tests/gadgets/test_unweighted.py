"""Tests for the Remark 1 unweighted conversion."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.commcc import uniquely_intersecting_inputs
from repro.gadgets import GadgetParameters, LinearConstruction, UnweightedExpansion
from repro.graphs import WeightedGraph, random_graph
from repro.maxis import max_weight_independent_set


class TestStructure:
    def test_weight_one_nodes_single_replica(self):
        graph = WeightedGraph(nodes={"a": 1})
        expansion = UnweightedExpansion(graph)
        assert expansion.replicas("a") == [("U", "a", 0)]

    def test_heavy_node_replicated(self):
        graph = WeightedGraph(nodes={"a": 4})
        expansion = UnweightedExpansion(graph)
        assert len(expansion.replicas("a")) == 4
        assert expansion.graph.num_nodes == 4

    def test_replicas_are_independent(self):
        graph = WeightedGraph(nodes={"a": 3})
        expansion = UnweightedExpansion(graph)
        assert expansion.graph.is_independent_set(expansion.replicas("a"))

    def test_heavy_light_edge_becomes_star(self):
        graph = WeightedGraph(nodes={"a": 3, "b": 1})
        graph.add_edge("a", "b")
        expansion = UnweightedExpansion(graph)
        (b_replica,) = expansion.replicas("b")
        for replica in expansion.replicas("a"):
            assert expansion.graph.has_edge(replica, b_replica)

    def test_heavy_heavy_edge_becomes_biclique(self):
        graph = WeightedGraph(nodes={"a": 2, "b": 3})
        graph.add_edge("a", "b")
        expansion = UnweightedExpansion(graph)
        assert expansion.graph.num_edges == 6

    def test_all_expansion_weights_one(self):
        graph = WeightedGraph(nodes={"a": 5, "b": 2})
        expansion = UnweightedExpansion(graph)
        assert all(
            expansion.graph.weight(v) == 1 for v in expansion.graph.nodes()
        )

    def test_non_integer_weight_rejected(self):
        graph = WeightedGraph(nodes={"a": 1.5})
        with pytest.raises(ValueError):
            UnweightedExpansion(graph)

    def test_zero_weight_rejected(self):
        graph = WeightedGraph(nodes={"a": 0})
        with pytest.raises(ValueError):
            UnweightedExpansion(graph)

    def test_original_of(self):
        graph = WeightedGraph(nodes={"a": 2})
        expansion = UnweightedExpansion(graph)
        assert expansion.original_of(("U", "a", 1)) == "a"
        with pytest.raises(ValueError):
            expansion.original_of("a")

    def test_blow_up_factor(self):
        graph = WeightedGraph(nodes={"a": 3, "b": 1})
        expansion = UnweightedExpansion(graph)
        assert expansion.blow_up_factor == 2.0


class TestOptimumPreservation:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_weighted_graphs(self, seed):
        graph = random_graph(
            10, 0.4, rng=random.Random(seed), weight_range=(1, 4)
        )
        expansion = UnweightedExpansion(graph)
        weighted = max_weight_independent_set(graph).weight
        unweighted = max_weight_independent_set(expansion.graph).weight
        assert weighted == unweighted

    def test_lift_preserves_weight_and_independence(self):
        graph = random_graph(8, 0.5, rng=random.Random(9), weight_range=(1, 5))
        expansion = UnweightedExpansion(graph)
        optimal = max_weight_independent_set(graph)
        lifted = expansion.expand_set(optimal.nodes)
        assert expansion.graph.is_independent_set(lifted)
        assert len(lifted) == optimal.weight

    def test_project_roundtrip(self):
        graph = WeightedGraph(nodes={"a": 2, "b": 1})
        expansion = UnweightedExpansion(graph)
        lifted = expansion.expand_set({"a", "b"})
        assert expansion.project_set(lifted) == {"a", "b"}

    def test_gadget_instance_remark1(self, figure_params):
        """Remark 1 applied to a hard instance: gap preserved, n = Theta(k l)."""
        construction = LinearConstruction(figure_params)
        inputs = uniquely_intersecting_inputs(
            figure_params.k, 2, rng=random.Random(4)
        )
        weighted_graph = construction.apply_inputs(inputs)
        expansion = UnweightedExpansion(weighted_graph)
        weighted_opt = max_weight_independent_set(weighted_graph).weight
        unweighted_opt = max_weight_independent_set(expansion.graph).weight
        assert weighted_opt == unweighted_opt
        assert expansion.graph.num_nodes > weighted_graph.num_nodes

    def test_expand_partition(self, figure_params):
        construction = LinearConstruction(figure_params)
        expansion = UnweightedExpansion(construction.graph)
        lifted = expansion.expand_partition(construction.partition())
        assert len(lifted) == 2
        total = sum(len(part) for part in lifted)
        assert total == expansion.graph.num_nodes


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(1, 8),
    p=st.floats(0, 1),
    seed=st.integers(0, 500),
)
def test_hypothesis_expansion_preserves_optimum(n, p, seed):
    graph = random_graph(n, p, rng=random.Random(seed), weight_range=(1, 3))
    expansion = UnweightedExpansion(graph)
    assert (
        max_weight_independent_set(graph).weight
        == max_weight_independent_set(expansion.graph).weight
    )
