"""Tests for the structured node identity helpers."""

import pytest

from repro.gadgets import (
    copy_of,
    is_clique_node,
    is_code_node,
    linear_clique_node,
    linear_code_node,
    player_of,
    quad_clique_node,
    quad_code_node,
)


class TestConstructors:
    def test_linear_nodes(self):
        assert linear_clique_node(1, 2) == ("A", 1, 2)
        assert linear_code_node(0, 3, 4) == ("C", 0, 3, 4)

    def test_quadratic_nodes(self):
        assert quad_clique_node(1, 0, 2) == ("A", 1, 0, 2)
        assert quad_code_node(2, 1, 3, 0) == ("C", 2, 1, 3, 0)

    def test_invalid_copy_rejected(self):
        with pytest.raises(ValueError):
            quad_clique_node(0, 2, 0)
        with pytest.raises(ValueError):
            quad_code_node(0, -1, 0, 0)


class TestPredicates:
    def test_is_clique_node(self):
        assert is_clique_node(linear_clique_node(0, 0))
        assert is_clique_node(quad_clique_node(0, 1, 0))
        assert not is_clique_node(linear_code_node(0, 0, 0))
        assert not is_clique_node("not a node")

    def test_is_code_node(self):
        assert is_code_node(linear_code_node(0, 0, 0))
        assert is_code_node(quad_code_node(0, 0, 0, 0))
        assert not is_code_node(linear_clique_node(0, 0))
        assert not is_code_node(42)


class TestAccessors:
    def test_player_of_linear(self):
        assert player_of(linear_clique_node(3, 0)) == 3
        assert player_of(linear_code_node(2, 0, 0)) == 2

    def test_player_of_quadratic(self):
        assert player_of(quad_clique_node(1, 0, 5)) == 1
        assert player_of(quad_code_node(4, 1, 0, 0)) == 4

    def test_player_of_foreign_rejected(self):
        with pytest.raises(ValueError):
            player_of(("X", 1))
        with pytest.raises(ValueError):
            player_of("plain")

    def test_copy_of(self):
        assert copy_of(quad_clique_node(0, 1, 2)) == 1
        assert copy_of(quad_code_node(0, 0, 1, 2)) == 0

    def test_copy_of_linear_rejected(self):
        with pytest.raises(ValueError):
            copy_of(linear_clique_node(0, 0))
        with pytest.raises(ValueError):
            copy_of(linear_code_node(0, 0, 0))
