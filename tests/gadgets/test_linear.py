"""Tests for the linear construction G and family G_x (Section 4, Figs 2-3)."""

import random

import pytest

from repro.commcc import (
    BitString,
    pairwise_disjoint_inputs,
    uniquely_intersecting_inputs,
)
from repro.framework import cut_size, pairwise_cut_sizes
from repro.gadgets import (
    GadgetParameters,
    LinearConstruction,
    LinearMaxISFamily,
)


class TestFixedGraph:
    def test_node_count(self, linear_fig, figure_params):
        assert linear_fig.graph.num_nodes == figure_params.linear_nodes == 24

    def test_partition_covers_everything(self, linear_fig):
        parts = linear_fig.partition()
        assert len(parts) == 2
        union = set()
        for part in parts:
            assert not (union & part)
            union |= part
        assert union == linear_fig.graph.node_set()

    def test_no_edges_between_a_cliques(self, linear_fig, figure_params):
        for m1 in range(figure_params.k):
            for m2 in range(figure_params.k):
                assert not linear_fig.graph.has_edge(
                    linear_fig.a_node(0, m1), linear_fig.a_node(1, m2)
                )

    def test_no_edges_between_ai_and_codej(self, linear_fig, figure_params):
        for m in range(figure_params.k):
            for node in linear_fig.layouts[1].all_code_nodes():
                assert not linear_fig.graph.has_edge(
                    linear_fig.a_node(0, m), node
                )

    def test_figure2_intercopy_wiring(self, linear_fig, figure_params):
        """sigma^i_(h,r) connects to all of C^j_h except sigma^j_(h,r)."""
        q = figure_params.q
        for h in range(q):
            for r in range(q):
                u = linear_fig.layouts[0].code_node(h, r)
                for s in range(q):
                    v = linear_fig.layouts[1].code_node(h, s)
                    assert linear_fig.graph.has_edge(u, v) == (r != s)

    def test_no_intercopy_edges_between_different_h(self, linear_fig, figure_params):
        q = figure_params.q
        for h1 in range(q):
            for h2 in range(q):
                if h1 == h2:
                    continue
                u = linear_fig.layouts[0].code_node(h1, 0)
                v = linear_fig.layouts[1].code_node(h2, 0)
                assert not linear_fig.graph.has_edge(u, v)

    def test_all_fixed_weights_one(self, linear_fig):
        assert all(
            linear_fig.graph.weight(v) == 1 for v in linear_fig.graph.nodes()
        )

    def test_cut_matches_closed_form(self, linear_fig, linear_fig_t3):
        for construction in (linear_fig, linear_fig_t3):
            measured = cut_size(construction.graph, construction.partition())
            assert measured == construction.expected_cut_size()

    def test_cut_is_symmetric_across_pairs(self, linear_fig_t3):
        sizes = pairwise_cut_sizes(
            linear_fig_t3.graph, linear_fig_t3.partition()
        )
        assert len(set(sizes.values())) == 1
        assert len(sizes) == 3  # C(3, 2) pairs

    def test_constant_diameter(self, linear_fig):
        """The paper notes the hard instances have constant diameter."""
        assert linear_fig.graph.diameter() <= 4

    def test_groups_for_rendering(self, linear_fig):
        groups = linear_fig.groups()
        assert set(groups) == {"A^0", "A^1", "Code^0", "Code^1"}


class TestApplyInputs:
    def test_weight_ell_iff_bit_set(self, linear_fig, figure_params):
        k, t, ell = figure_params.k, figure_params.t, figure_params.ell
        inputs = [
            BitString.from_indices(k, [0, 2]),
            BitString.from_indices(k, [1]),
        ]
        graph = linear_fig.apply_inputs(inputs)
        assert graph.weight(linear_fig.a_node(0, 0)) == ell
        assert graph.weight(linear_fig.a_node(0, 1)) == 1
        assert graph.weight(linear_fig.a_node(0, 2)) == ell
        assert graph.weight(linear_fig.a_node(1, 1)) == ell
        assert graph.weight(linear_fig.a_node(1, 0)) == 1

    def test_code_nodes_stay_weight_one(self, linear_fig, figure_params):
        inputs = [BitString.ones(figure_params.k)] * 2
        graph = linear_fig.apply_inputs(inputs)
        for layout in linear_fig.layouts:
            for node in layout.all_code_nodes():
                assert graph.weight(node) == 1

    def test_edges_unchanged(self, linear_fig, figure_params):
        inputs = [BitString.ones(figure_params.k)] * 2
        graph = linear_fig.apply_inputs(inputs)
        assert graph.edge_set() == linear_fig.graph.edge_set()

    def test_fixed_graph_not_mutated(self, linear_fig, figure_params):
        inputs = [BitString.ones(figure_params.k)] * 2
        linear_fig.apply_inputs(inputs)
        assert all(
            linear_fig.graph.weight(v) == 1 for v in linear_fig.graph.nodes()
        )

    def test_wrong_input_count_raises(self, linear_fig, figure_params):
        with pytest.raises(ValueError):
            linear_fig.apply_inputs([BitString.ones(figure_params.k)])

    def test_wrong_input_length_raises(self, linear_fig):
        with pytest.raises(ValueError):
            linear_fig.apply_inputs([BitString.ones(5), BitString.ones(5)])


class TestFamily:
    def test_family_shape(self, meaningful_params_t3):
        family = LinearMaxISFamily(meaningful_params_t3)
        assert family.num_players == 3
        assert family.input_length == meaningful_params_t3.k

    def test_warmup_requires_t2(self, meaningful_params_t3):
        with pytest.raises(ValueError):
            LinearMaxISFamily(meaningful_params_t3, warmup=True)

    def test_warmup_thresholds(self, figure_params):
        family = LinearMaxISFamily(figure_params, warmup=True)
        assert family.gap.low_threshold == 9
        assert family.gap.high_threshold == 10
        assert family.gap.is_meaningful

    def test_function_value_matches_promise(self, figure_params, rng):
        family = LinearMaxISFamily(figure_params, warmup=True)
        disjoint = pairwise_disjoint_inputs(figure_params.k, 2, rng=rng)
        assert family.function_value(disjoint) is True
        intersecting = uniquely_intersecting_inputs(figure_params.k, 2, rng=rng)
        assert family.function_value(intersecting) is False

    def test_predicate_matches_function_warmup(self, figure_params):
        """Definition 4 condition 2 at figure scale, sampled."""
        family = LinearMaxISFamily(figure_params, warmup=True)
        rng = random.Random(5)
        for intersecting in (True, False):
            for _ in range(4):
                gen = (
                    uniquely_intersecting_inputs
                    if intersecting
                    else pairwise_disjoint_inputs
                )
                inputs = gen(figure_params.k, 2, rng=rng)
                graph = family.build(inputs)
                assert family.predicate(graph) == family.function_value(inputs)

    def test_predicate_matches_function_t3(self, meaningful_params_t3):
        family = LinearMaxISFamily(meaningful_params_t3)
        rng = random.Random(6)
        params = meaningful_params_t3
        for intersecting in (True, False):
            gen = (
                uniquely_intersecting_inputs
                if intersecting
                else pairwise_disjoint_inputs
            )
            inputs = gen(params.k, params.t, rng=rng)
            graph = family.build(inputs)
            assert family.predicate(graph) == family.function_value(inputs)

    def test_part_of(self, figure_params):
        family = LinearMaxISFamily(figure_params, warmup=True)
        assert family.part_of(("A", 0, 1)) == 0
        assert family.part_of(("C", 1, 0, 0)) == 1
        with pytest.raises(ValueError):
            family.part_of("stranger")
