"""Tests for the witnesses and property checkers (Properties 1-3, Claims 1/3/6)."""

import itertools
import random

import pytest

from repro.commcc import BitString, index_pair_to_flat, uniquely_intersecting_inputs
from repro.gadgets import (
    GadgetParameters,
    check_property1,
    check_property2,
    check_property3,
    corollary2_bound,
    linear_intersecting_witness,
    property1_witness,
    property2_matching_size,
    property3_overlap_count,
    quadratic_intersecting_witness,
    two_party_intersecting_witness,
)
from repro.maxis import random_maximal_independent_set


class TestProperty1:
    def test_all_indices_figure_scale(self, linear_fig, figure_params):
        for m in range(figure_params.k):
            assert check_property1(linear_fig, m)

    def test_three_players(self, linear_fig_t3, figure_params_t3):
        """Figure 3: {v^1_1, v^2_1, v^3_1} ∪ Code^i_1 is independent."""
        for m in range(figure_params_t3.k):
            assert check_property1(linear_fig_t3, m)

    def test_witness_size(self, linear_fig_t3, figure_params_t3):
        witness = property1_witness(linear_fig_t3, 0)
        t, q = figure_params_t3.t, figure_params_t3.q
        assert len(witness) == t * (1 + q)

    def test_witness_spans_all_players(self, linear_fig_t3):
        witness = property1_witness(linear_fig_t3, 0)
        players = {node[1] for node in witness}
        assert players == {0, 1, 2}


class TestProperty2:
    def test_all_pairs_figure_scale(self, linear_fig, figure_params):
        for m1, m2 in itertools.permutations(range(figure_params.k), 2):
            assert check_property2(linear_fig, 0, 1, m1, m2)

    def test_matching_at_least_ell_meaningful_scale(self, linear_meaningful):
        params = linear_meaningful.params
        for i, j in itertools.combinations(range(params.t), 2):
            for m1, m2 in [(0, 1), (1, 3), (2, 4)]:
                size = property2_matching_size(linear_meaningful, i, j, m1, m2)
                assert size >= params.ell

    def test_same_player_rejected(self, linear_fig):
        with pytest.raises(ValueError):
            property2_matching_size(linear_fig, 0, 0, 0, 1)

    def test_same_index_rejected(self, linear_fig):
        with pytest.raises(ValueError):
            property2_matching_size(linear_fig, 0, 1, 2, 2)


class TestProperty3:
    def test_random_maximal_sets(self, linear_fig, figure_params):
        rng = random.Random(1)
        for _ in range(10):
            independent = random_maximal_independent_set(
                linear_fig.graph, rng=rng
            ).nodes
            for m1, m2 in itertools.permutations(range(figure_params.k), 2):
                assert check_property3(linear_fig, independent, 0, 1, m1, m2)

    def test_witness_overlap_counted(self, linear_fig):
        """The Property-1 witness for m contains Code^0_m and Code^1_m, so
        overlap for (m, m') with m != m' counts only shared positions."""
        witness = property1_witness(linear_fig, 0)
        count = property3_overlap_count(linear_fig, witness, 0, 1, 0, 1)
        assert count <= linear_fig.params.alpha

    def test_non_independent_set_rejected(self, linear_fig):
        clique_pair = [linear_fig.a_node(0, 0), linear_fig.a_node(0, 1)]
        with pytest.raises(ValueError):
            property3_overlap_count(linear_fig, clique_pair, 0, 1, 0, 1)

    def test_distinctness_enforced(self, linear_fig):
        with pytest.raises(ValueError):
            property3_overlap_count(linear_fig, [], 0, 0, 0, 1)
        with pytest.raises(ValueError):
            property3_overlap_count(linear_fig, [], 0, 1, 1, 1)


class TestLinearWitnesses:
    def test_claim3_witness_weight(self, linear_fig_t3, figure_params_t3):
        params = figure_params_t3
        inputs = uniquely_intersecting_inputs(
            params.k, params.t, rng=random.Random(0), common_index=1
        )
        graph = linear_fig_t3.apply_inputs(inputs)
        witness = linear_intersecting_witness(linear_fig_t3, 1)
        assert graph.is_independent_set(witness)
        assert graph.total_weight(witness) == params.linear_high_threshold()

    def test_claim1_witness_requires_t2(self, linear_fig_t3):
        with pytest.raises(ValueError):
            two_party_intersecting_witness(linear_fig_t3, 0)

    def test_claim1_witness_weight(self, linear_fig, figure_params):
        params = figure_params
        inputs = [BitString.ones(params.k)] * 2
        graph = linear_fig.apply_inputs(inputs)
        witness = two_party_intersecting_witness(linear_fig, 0)
        assert graph.total_weight(witness) == 4 * params.ell + 2 * params.alpha

    def test_corollary2_bound_value(self, linear_fig_t3, figure_params_t3):
        params = figure_params_t3
        expected = (params.t + 1) * params.ell + params.alpha * params.t ** 2
        assert corollary2_bound(linear_fig_t3) == expected


class TestQuadraticWitness:
    def test_claim6_witness(self, quadratic_fig, figure_params):
        params = figure_params
        k = params.k
        flat = index_pair_to_flat(0, 1, k)
        inputs = uniquely_intersecting_inputs(
            k * k, params.t, rng=random.Random(2), common_index=flat
        )
        graph = quadratic_fig.apply_inputs(inputs)
        witness = quadratic_intersecting_witness(quadratic_fig, 0, 1)
        assert graph.is_independent_set(witness)
        assert graph.total_weight(witness) == params.quadratic_high_threshold()

    def test_witness_blocked_without_common_bit(self, quadratic_fig, figure_params):
        """If some player's bit (m1, m2) is 0, its input edge kills the witness."""
        params = figure_params
        k = params.k
        flat = index_pair_to_flat(0, 1, k)
        x0 = BitString.ones(k * k) ^ BitString.from_indices(k * k, [flat])
        x1 = BitString.ones(k * k)
        graph = quadratic_fig.apply_inputs([x0, x1])
        witness = quadratic_intersecting_witness(quadratic_fig, 0, 1)
        assert not graph.is_independent_set(witness)

    def test_witness_size(self, quadratic_fig, figure_params):
        witness = quadratic_intersecting_witness(quadratic_fig, 0, 1)
        t, q = figure_params.t, figure_params.q
        assert len(witness) == 2 * t * (1 + q)
