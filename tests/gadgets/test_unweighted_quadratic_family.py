"""Tests for the quadratic unweighted family (Remark 1 for Theorem 2)."""

import random

import pytest

from repro.commcc import BitString, pairwise_disjoint_inputs, promise_inputs
from repro.framework import verify_locality, verify_partition
from repro.gadgets import (
    GadgetParameters,
    QuadraticMaxISFamily,
    UnweightedQuadraticMaxISFamily,
)
from repro.maxis import max_weight_independent_set


@pytest.fixture(scope="module")
def params():
    return GadgetParameters(ell=2, alpha=1, t=2)


@pytest.fixture(scope="module")
def family(params):
    return UnweightedQuadraticMaxISFamily(params)


class TestStructure:
    def test_node_count(self, family, params):
        expected = 2 * params.t * (params.k * params.ell + params.q ** 2)
        assert family.num_nodes == expected

    def test_all_weights_one(self, family, params):
        graph = family.build([BitString.ones(params.k ** 2)] * params.t)
        assert all(graph.weight(v) == 1 for v in graph.nodes())

    def test_replica_groups_always_independent(self, family, params):
        graph = family.build([BitString.zeros(params.k ** 2)] * params.t)
        for copy in (0, 1):
            for m in range(params.k):
                assert graph.is_independent_set(family.replica_group(0, copy, m))

    def test_zero_bit_becomes_group_biclique(self, family, params):
        length = params.k ** 2
        x0 = BitString.ones(length) ^ BitString.from_indices(length, [0])
        graph = family.build([x0, BitString.ones(length)])
        for a in family.replica_group(0, 0, 0):
            for b in family.replica_group(0, 1, 0):
                assert graph.has_edge(a, b)

    def test_partition_valid(self, family, params):
        graph = family.build([BitString.ones(params.k ** 2)] * params.t)
        verify_partition(family, graph)


class TestEquivalence:
    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("intersecting", [True, False])
    def test_optimum_matches_weighted(self, params, family, seed, intersecting):
        weighted = QuadraticMaxISFamily(params)
        inputs = promise_inputs(
            params.k ** 2, params.t, intersecting, rng=random.Random(seed)
        )
        assert (
            max_weight_independent_set(family.build(inputs)).weight
            == max_weight_independent_set(weighted.build(inputs)).weight
        )


class TestLocality:
    def test_input_edges_stay_in_own_part(self, family, params):
        rng = random.Random(4)
        length = params.k ** 2
        base = pairwise_disjoint_inputs(length, params.t, rng=rng)
        variants = []
        for i in range(params.t):
            changed = list(base)
            changed[i] = BitString.from_indices(length, [rng.randrange(length)])
            variants.append(changed)
        verify_locality(family, base, variants)
