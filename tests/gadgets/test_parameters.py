"""Tests for gadget parameters and the threshold formulas."""

import pytest

from repro.gadgets import (
    GadgetParameters,
    feasible_parameter_sweep,
    figure_parameters,
    smallest_meaningful_linear_parameters,
    t_for_epsilon_linear,
    t_for_epsilon_quadratic,
)


class TestValidation:
    def test_defaults_to_full_k(self):
        params = GadgetParameters(ell=2, alpha=1, t=2)
        assert params.k == 3
        assert params.full_k == 3

    def test_alpha2(self):
        params = GadgetParameters(ell=2, alpha=2, t=2)
        assert params.q == 4
        assert params.k == 16

    def test_truncated_k(self):
        params = GadgetParameters(ell=2, alpha=2, t=2, k=5)
        assert params.k == 5

    def test_k_out_of_range(self):
        with pytest.raises(ValueError):
            GadgetParameters(ell=2, alpha=1, t=2, k=4)
        with pytest.raises(ValueError):
            GadgetParameters(ell=2, alpha=1, t=2, k=0)

    @pytest.mark.parametrize("kwargs", [
        {"ell": 0, "alpha": 1, "t": 2},
        {"ell": 1, "alpha": 0, "t": 2},
        {"ell": 1, "alpha": 1, "t": 1},
    ])
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            GadgetParameters(**kwargs)

    def test_equality_and_hash(self):
        a = GadgetParameters(ell=2, alpha=1, t=2)
        b = GadgetParameters(ell=2, alpha=1, t=2)
        assert a == b
        assert hash(a) == hash(b)
        assert a != GadgetParameters(ell=3, alpha=1, t=2)


class TestDerivedQuantities:
    def test_node_counts(self):
        params = figure_parameters()
        # H: k + q^2 = 3 + 9 = 12; G: t * 12 = 24; F: 48.
        assert params.base_graph_nodes == 12
        assert params.linear_nodes == 24
        assert params.quadratic_nodes == 48

    def test_rs_availability(self):
        assert GadgetParameters(ell=2, alpha=1, t=2).has_rs_code  # q=3
        assert GadgetParameters(ell=3, alpha=1, t=2).has_rs_code  # q=4
        assert not GadgetParameters(ell=5, alpha=1, t=2).has_rs_code  # q=6


class TestThresholds:
    def test_linear_thresholds_figure_params(self):
        params = figure_parameters()  # ell=2, alpha=1, t=2
        assert params.linear_high_threshold() == 2 * (4 + 1)  # t(2l+a) = 10
        assert params.linear_low_threshold() == 3 * 2 + 1 * 4  # (t+1)l + at^2 = 10

    def test_two_party_warmup_threshold(self):
        params = figure_parameters()
        assert params.two_party_low_threshold() == 3 * 2 + 2 * 1 + 1  # 9

    def test_warmup_threshold_needs_t2(self):
        with pytest.raises(ValueError):
            GadgetParameters(ell=2, alpha=1, t=3).two_party_low_threshold()

    def test_linear_gap_meaningful_iff_ell_gt_alpha_t(self):
        for t in (2, 3, 4):
            for alpha in (1, 2):
                for ell in range(1, 12):
                    params = GadgetParameters(ell=ell, alpha=alpha, t=t)
                    assert params.linear_gap_is_meaningful() == (ell > alpha * t)

    def test_linear_gap_ratio_tends_to_half(self):
        # With ell >> alpha t, the ratio approaches (t+1)/(2t).
        ratios = []
        for t in (2, 4, 8):
            params = GadgetParameters(ell=100 * t, alpha=1, t=t)
            ratios.append(params.linear_gap_ratio())
        assert ratios == sorted(ratios, reverse=True)
        assert abs(ratios[-1] - (8 + 1) / 16) < 0.02

    def test_quadratic_thresholds(self):
        params = figure_parameters()
        assert params.quadratic_high_threshold() == 2 * (8 + 2)  # 20
        assert params.quadratic_low_threshold() == 3 * 3 * 2 + 3 * 8  # 42

    def test_quadratic_claimed_gap_vacuous_at_small_scale(self):
        assert not figure_parameters().quadratic_gap_is_meaningful()

    def test_quadratic_gap_meaningful_at_huge_ell(self):
        params = GadgetParameters(ell=200, alpha=1, t=4, k=1)
        assert params.quadratic_gap_is_meaningful()


class TestPlayerCountRules:
    def test_linear_paper_rule(self):
        assert t_for_epsilon_linear(0.25) == 8
        assert t_for_epsilon_linear(0.1) == 20

    def test_linear_tight_rule(self):
        assert t_for_epsilon_linear(0.25, paper_rule=False) == 4

    def test_linear_epsilon_range(self):
        with pytest.raises(ValueError):
            t_for_epsilon_linear(0.0)
        with pytest.raises(ValueError):
            t_for_epsilon_linear(0.5)

    def test_quadratic_rule_satisfies_gap(self):
        for epsilon in (0.01, 0.05, 0.1, 0.2):
            t = t_for_epsilon_quadratic(epsilon)
            # The asymptotic ratio 3(t+2)/(4(t-1)) must be within 3/4 + eps.
            assert 3 * (t + 2) / (4 * (t - 1)) <= 0.75 + epsilon + 1e-9

    def test_quadratic_epsilon_range(self):
        with pytest.raises(ValueError):
            t_for_epsilon_quadratic(0.25)


class TestPresets:
    def test_smallest_meaningful(self):
        for t in (2, 3, 5):
            params = smallest_meaningful_linear_parameters(t)
            assert params.linear_gap_is_meaningful()
            smaller = GadgetParameters(ell=params.ell - 1, alpha=1, t=t)
            assert not smaller.linear_gap_is_meaningful()

    def test_prime_power_preference(self):
        # t = 8 would give ell = 9 (q = 10, composite); the preference
        # bumps to ell = 10 (q = 11, prime).
        params = smallest_meaningful_linear_parameters(8)
        assert params.ell == 10
        assert params.has_rs_code

    def test_prime_power_preference_disabled(self):
        params = smallest_meaningful_linear_parameters(8, prefer_prime_power=False)
        assert params.ell == 9
        assert not params.has_rs_code

    def test_sweep_respects_budget(self):
        sweep = feasible_parameter_sweep(max_linear_nodes=300)
        assert sweep
        for params in sweep:
            assert params.linear_nodes <= 300
            assert params.linear_gap_is_meaningful()

    def test_sweep_sorted_by_size(self):
        sweep = feasible_parameter_sweep(max_linear_nodes=400)
        sizes = [params.linear_nodes for params in sweep]
        assert sizes == sorted(sizes)
