"""Tests for the executable Claim 7 case analysis."""

import random

import pytest

from repro.commcc import BitString, pairwise_disjoint_inputs
from repro.gadgets import (
    GadgetParameters,
    QuadraticConstruction,
    analyze_claim7_case2,
    build_case2_independent_set,
    case2_applies,
)


@pytest.fixture(scope="module")
def setup():
    params = GadgetParameters(ell=2, alpha=1, t=3)
    return params, QuadraticConstruction(params)


def _case2_instances(params, construction, max_instances=4):
    found = []
    for seed in range(40):
        inputs = pairwise_disjoint_inputs(
            params.k ** 2, params.t, rng=random.Random(seed)
        )
        graph = construction.apply_inputs(inputs)
        iset = build_case2_independent_set(construction, graph, inputs)
        if iset is not None:
            found.append((inputs, graph, iset))
            if len(found) >= max_instances:
                break
    return found


class TestCase2Detection:
    def test_empty_set_is_not_case2(self, setup):
        params, construction = setup
        assert not case2_applies(construction, set())

    def test_built_sets_are_case2(self, setup):
        params, construction = setup
        instances = _case2_instances(params, construction)
        assert instances, "no case-2 instance found in 40 seeds"
        for _, graph, iset in instances:
            assert graph.is_independent_set(iset)
            assert case2_applies(construction, iset)


class TestBreakdown:
    def test_propositions_hold_on_case2_sets(self, setup):
        params, construction = setup
        for _, graph, iset in _case2_instances(params, construction):
            breakdown = analyze_claim7_case2(construction, graph, iset)
            assert breakdown.propositions_hold, breakdown
            assert breakdown.claim_holds, breakdown

    def test_group_weights_sum_to_total(self, setup):
        params, construction = setup
        for _, graph, iset in _case2_instances(params, construction):
            breakdown = analyze_claim7_case2(construction, graph, iset)
            assert sum(breakdown.group_weights) == breakdown.total_weight

    def test_classes_partition_players(self, setup):
        params, construction = setup
        for _, graph, iset in _case2_instances(params, construction):
            breakdown = analyze_claim7_case2(construction, graph, iset)
            players = sorted(p for cls in breakdown.classes for p in cls)
            assert players == list(range(params.t))

    def test_pairs_are_distinct_under_disjointness(self, setup):
        """Pairwise-disjoint strings force all (m1, m2) pairs distinct."""
        params, construction = setup
        for _, graph, iset in _case2_instances(params, construction):
            breakdown = analyze_claim7_case2(construction, graph, iset)
            assert len(set(breakdown.pairs)) == len(breakdown.pairs)

    def test_within_class_second_indices_distinct(self, setup):
        """The proof's key observation inside each equivalence class."""
        params, construction = setup
        for _, graph, iset in _case2_instances(params, construction):
            breakdown = analyze_claim7_case2(construction, graph, iset)
            for cls in breakdown.classes:
                seconds = [breakdown.pairs[p][1] for p in cls]
                assert len(set(seconds)) == len(seconds)


class TestValidation:
    def test_non_independent_rejected(self, setup):
        params, construction = setup
        graph = construction.apply_inputs(
            [BitString.ones(params.k ** 2)] * params.t
        )
        clique_pair = {
            construction.a_node(0, 0, 0),
            construction.a_node(0, 0, 1),
        }
        with pytest.raises(ValueError):
            analyze_claim7_case2(construction, graph, clique_pair)

    def test_non_case2_rejected(self, setup):
        params, construction = setup
        graph = construction.apply_inputs(
            [BitString.ones(params.k ** 2)] * params.t
        )
        with pytest.raises(ValueError, match="case 2"):
            analyze_claim7_case2(
                construction, graph, {construction.a_node(0, 0, 0)}
            )

    def test_no_case2_set_for_allzero_inputs(self, setup):
        """All-zero strings: no non-edge pair exists for any player."""
        params, construction = setup
        inputs = [BitString.zeros(params.k ** 2)] * params.t
        graph = construction.apply_inputs(inputs)
        assert build_case2_independent_set(construction, graph, inputs) is None
