"""Tests for the base graph H (Section 4.1, Figure 1)."""

import pytest

from repro.codes import code_mapping_for_parameters
from repro.gadgets import GadgetParameters, build_base_graph
from repro.gadgets.base_graph import add_base_graph
from repro.graphs import WeightedGraph


@pytest.fixture(scope="module")
def fig1():
    """H at the figure's parameters: ell=2, alpha=1, k=3."""
    params = GadgetParameters(ell=2, alpha=1, t=2)
    code = code_mapping_for_parameters(params.ell, params.alpha)
    graph, layout = build_base_graph(params, code)
    return params, code, graph, layout


class TestStructure:
    def test_node_count(self, fig1):
        params, _, graph, _ = fig1
        assert graph.num_nodes == params.k + params.q ** 2 == 12

    def test_a_is_clique(self, fig1):
        _, _, graph, layout = fig1
        assert graph.is_clique(layout.a_nodes)

    def test_each_code_clique_is_clique(self, fig1):
        _, _, graph, layout = fig1
        for clique_nodes in layout.code_cliques:
            assert graph.is_clique(clique_nodes)

    def test_no_edges_between_different_code_cliques(self, fig1):
        _, _, graph, layout = fig1
        for h1 in range(3):
            for h2 in range(h1 + 1, 3):
                for u in layout.code_cliques[h1]:
                    for v in layout.code_cliques[h2]:
                        assert not graph.has_edge(u, v)

    def test_edge_count(self, fig1):
        """|E| = C(k,2) + q*C(q,2) + k*q*(q-1) at these parameters.

        Each v_m is connected to Code minus Code_m: q^2 - q nodes.
        """
        params, _, graph, _ = fig1
        k, q = params.k, params.q
        expected = (
            k * (k - 1) // 2
            + q * (q * (q - 1) // 2)
            + k * (q * q - q)
        )
        assert graph.num_edges == expected

    def test_all_weights_one(self, fig1):
        _, _, graph, _ = fig1
        assert all(graph.weight(v) == 1 for v in graph.nodes())


class TestCodeWiring:
    def test_vm_disconnected_from_own_codeword(self, fig1):
        _, code, graph, layout = fig1
        for m in range(3):
            for node in layout.code_set(m):
                assert not graph.has_edge(layout.a_node(m), node)

    def test_vm_connected_to_rest_of_code(self, fig1):
        _, code, graph, layout = fig1
        for m in range(3):
            own = set(layout.code_set(m))
            for node in layout.all_code_nodes():
                if node not in own:
                    assert graph.has_edge(layout.a_node(m), node)

    def test_code_set_is_one_node_per_clique(self, fig1):
        params, code, _, layout = fig1
        for m in range(params.k):
            nodes = layout.code_set(m)
            assert len(nodes) == params.q
            cliques = [node[2] for node in nodes]  # ("C", player, h, r)
            assert cliques == list(range(params.q))

    def test_code_set_spells_codeword(self, fig1):
        params, code, _, layout = fig1
        for m in range(params.k):
            word = code.codeword(m)
            for h, node in enumerate(layout.code_set(m)):
                assert node == ("C", 0, h, word[h])

    def test_vm_with_own_code_set_is_independent(self, fig1):
        """The within-copy half of Property 1."""
        _, _, graph, layout = fig1
        for m in range(3):
            assert graph.is_independent_set(
                [layout.a_node(m)] + layout.code_set(m)
            )


class TestBuilderValidation:
    def test_code_with_wrong_block_length_rejected(self):
        params = GadgetParameters(ell=2, alpha=1, t=2)
        wrong = code_mapping_for_parameters(3, 1)  # block length 4 != 3
        with pytest.raises(ValueError):
            build_base_graph(params, wrong)

    def test_code_with_too_few_words_rejected(self):
        params = GadgetParameters(ell=2, alpha=2, t=2)  # k = 16
        small = code_mapping_for_parameters(2, 1)  # only 3 codewords but q=3 != 4
        with pytest.raises(ValueError):
            build_base_graph(params, small)

    def test_custom_namers(self):
        params = GadgetParameters(ell=2, alpha=1, t=2)
        code = code_mapping_for_parameters(2, 1)
        graph = WeightedGraph()
        layout = add_base_graph(
            graph,
            params,
            code,
            a_namer=lambda m: f"a{m}",
            c_namer=lambda h, r: f"c{h}.{r}",
        )
        assert "a0" in graph
        assert "c2.1" in graph
        assert layout.a_node(1) == "a1"

    def test_groups_labelled(self, fig1):
        _, _, _, layout = fig1
        groups = layout.groups()
        assert set(groups) == {"A", "C_0", "C_1", "C_2"}
        assert len(groups["A"]) == 3
