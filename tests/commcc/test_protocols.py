"""Tests for the reference disjointness protocols."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.commcc import (
    BitString,
    CandidateIndexProtocol,
    FullRevealProtocol,
    RunningIntersectionProtocol,
    candidate_index_upper_bound,
    full_reveal_upper_bound,
    promise_inputs,
    promise_pairwise_disjointness,
    replay_candidate_index_output,
)

PROTOCOLS = [
    FullRevealProtocol,
    RunningIntersectionProtocol,
    CandidateIndexProtocol,
]


def _cases(k, t, seeds):
    for seed in seeds:
        for intersecting in (True, False):
            yield promise_inputs(k, t, intersecting, rng=random.Random(seed))


class TestCorrectness:
    @pytest.mark.parametrize("protocol_cls", PROTOCOLS)
    @pytest.mark.parametrize("t", [2, 3, 5])
    def test_matches_function_on_promise_inputs(self, protocol_cls, t):
        protocol = protocol_cls()
        for inputs in _cases(k=16, t=t, seeds=range(6)):
            expected = promise_pairwise_disjointness(inputs)
            assert protocol.run(inputs).output == expected

    def test_full_reveal_handles_all_zero(self):
        inputs = [BitString.zeros(8)] * 3
        assert FullRevealProtocol().run(inputs).output is True

    def test_candidate_index_all_ones_single_bit(self):
        inputs = [BitString.ones(1)] * 4
        assert CandidateIndexProtocol().run(inputs).output is False


class TestCosts:
    def test_full_reveal_cost_exact(self):
        inputs = [BitString.zeros(12)] * 3
        result = FullRevealProtocol().run(inputs)
        assert result.cost_bits == full_reveal_upper_bound(12, 3) == 36

    def test_candidate_index_within_bound(self):
        for t in (2, 4):
            for inputs in _cases(k=32, t=t, seeds=range(4)):
                cost = CandidateIndexProtocol().run(inputs).cost_bits
                assert cost <= candidate_index_upper_bound(32, t)

    def test_candidate_index_cheap_on_disjoint(self):
        inputs = promise_inputs(64, 4, intersecting=False, rng=random.Random(0))
        cost = CandidateIndexProtocol().run(inputs).cost_bits
        assert cost == 64 + 1  # reveal + "disjoint" flag

    def test_running_intersection_disjoint_cost(self):
        inputs = promise_inputs(32, 5, intersecting=False, rng=random.Random(1))
        cost = RunningIntersectionProtocol().run(inputs).cost_bits
        assert cost == 32 + 1  # x^1 + the empty flag from player 2

    def test_candidate_beats_full_reveal_for_many_players(self):
        k, t = 64, 8
        assert candidate_index_upper_bound(k, t) < full_reveal_upper_bound(k, t)


class TestTranscriptDecodability:
    @pytest.mark.parametrize("intersecting", [True, False])
    def test_output_is_function_of_transcript(self, intersecting):
        k, t = 16, 4
        inputs = promise_inputs(k, t, intersecting, rng=random.Random(9))
        result = CandidateIndexProtocol().run(inputs)
        replayed = replay_candidate_index_output(
            result.board.transcript(), k, t
        )
        assert replayed == result.output


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    k=st.integers(2, 40),
    t=st.integers(2, 6),
    intersecting=st.booleans(),
)
def test_hypothesis_protocols_agree(seed, k, t, intersecting):
    inputs = promise_inputs(k, t, intersecting, rng=random.Random(seed))
    expected = promise_pairwise_disjointness(inputs)
    for protocol_cls in PROTOCOLS:
        assert protocol_cls().run(inputs).output == expected
