"""Tests for the shared blackboard model and cost accounting."""

import pytest

from repro.commcc import (
    Blackboard,
    PlayerView,
    Protocol,
    ProtocolResult,
    bits_needed,
    decode_integer,
    encode_integer,
)


class TestBlackboard:
    def test_write_and_total_bits(self):
        board = Blackboard()
        board.write(0, "1010")
        board.write(1, "11")
        assert board.total_bits == 6
        assert len(board) == 2

    def test_transcript_concatenates(self):
        board = Blackboard()
        board.write(0, "10")
        board.write(1, "01")
        assert board.transcript() == "1001"

    def test_non_bit_write_rejected(self):
        board = Blackboard()
        with pytest.raises(ValueError):
            board.write(0, "abc")

    def test_empty_write_allowed(self):
        board = Blackboard()
        board.write(0, "")
        assert board.total_bits == 0

    def test_entries_record_player_and_label(self):
        board = Blackboard()
        board.write(2, "1", label="hello")
        entry = board.entries()[0]
        assert entry.player == 2
        assert entry.label == "hello"

    def test_entries_returns_copy(self):
        board = Blackboard()
        board.write(0, "1")
        board.entries().clear()
        assert len(board) == 1


class _EchoProtocol(Protocol):
    """Each player writes its (string) input; output = parity of total bits."""

    def execute(self, views):
        for view in views:
            view.write(view.local_input)
        return views[0].board.total_bits % 2 == 0


class TestProtocolRunner:
    def test_run_returns_result_with_cost(self):
        result = _EchoProtocol().run(["101", "11"])
        assert isinstance(result, ProtocolResult)
        assert result.cost_bits == 5
        assert result.output is False

    def test_single_player_rejected(self):
        with pytest.raises(ValueError):
            _EchoProtocol().run(["1"])

    def test_worst_case_cost(self):
        protocol = _EchoProtocol()
        cost = protocol.worst_case_cost([["1", "1"], ["111", "1111"]])
        assert cost == 7

    def test_player_views_have_indices(self):
        captured = []

        class Capture(Protocol):
            def execute(self, views):
                captured.extend(view.player for view in views)
                return True

        Capture().run(["a", "b", "c"])
        assert captured == [0, 1, 2]


class TestIntegerEncoding:
    def test_roundtrip(self):
        for value in [0, 1, 5, 255]:
            assert decode_integer(encode_integer(value, 9)) == value

    def test_fixed_width(self):
        assert encode_integer(3, 5) == "00011"

    def test_overflow_raises(self):
        with pytest.raises(ValueError):
            encode_integer(8, 3)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            encode_integer(-1, 3)

    def test_decode_rejects_garbage(self):
        with pytest.raises(ValueError):
            decode_integer("10a")
        with pytest.raises(ValueError):
            decode_integer("")

    def test_bits_needed(self):
        assert bits_needed(1) == 1
        assert bits_needed(2) == 1
        assert bits_needed(3) == 2
        assert bits_needed(8) == 3
        assert bits_needed(9) == 4

    def test_bits_needed_invalid(self):
        with pytest.raises(ValueError):
            bits_needed(0)
