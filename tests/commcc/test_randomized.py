"""Tests for randomized protocols and success estimation."""

import random

import pytest

from repro.commcc import (
    BitString,
    ProtocolSuccessEstimate,
    SampledIndexProtocol,
    estimate_protocol_success,
    promise_inputs,
    uniquely_intersecting_inputs,
)


def _mixed_sampler(k, t):
    def sample(rng: random.Random):
        return promise_inputs(k, t, intersecting=rng.random() < 0.5, rng=rng)

    return sample


def _intersecting_sampler(k, t):
    def sample(rng: random.Random):
        return uniquely_intersecting_inputs(k, t, rng=rng)

    return sample


class TestSampledIndexProtocol:
    def test_full_sample_is_exact(self):
        protocol = SampledIndexProtocol(fraction=1.0, seed=0)
        for seed in range(6):
            for intersecting in (True, False):
                inputs = promise_inputs(
                    24, 3, intersecting, rng=random.Random(seed)
                )
                assert protocol.run(inputs).output == (not intersecting)

    def test_one_sided_error(self):
        """Never wrong on the pairwise-disjoint side, at any fraction."""
        protocol = SampledIndexProtocol(fraction=0.1, seed=3)
        for seed in range(8):
            inputs = promise_inputs(30, 3, False, rng=random.Random(seed))
            protocol.reseed(seed)
            assert protocol.run(inputs).output is True

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            SampledIndexProtocol(fraction=0.0)
        with pytest.raises(ValueError):
            SampledIndexProtocol(fraction=1.5)

    def test_cost_scales_with_fraction(self):
        k, t = 60, 3
        inputs = promise_inputs(k, t, False, rng=random.Random(1))
        small = SampledIndexProtocol(fraction=0.2, seed=0).run(inputs).cost_bits
        large = SampledIndexProtocol(fraction=0.9, seed=0).run(inputs).cost_bits
        assert small < large
        assert large <= t * k

    def test_coins_are_public_and_reproducible(self):
        inputs = promise_inputs(20, 2, True, rng=random.Random(2))
        protocol = SampledIndexProtocol(fraction=0.3, seed=77)
        first = protocol.run(inputs).output
        protocol.reseed(77)
        assert protocol.run(inputs).output == first


class TestSuccessEstimation:
    def test_estimate_fields(self):
        estimate = ProtocolSuccessEstimate(40, 50, worst_cost_bits=120)
        assert estimate.probability == 0.8
        assert estimate.meets_two_thirds
        assert estimate.worst_cost_bits == 120

    def test_zero_trials_rejected(self):
        with pytest.raises(ValueError):
            ProtocolSuccessEstimate(0, 0, 0)

    def test_full_fraction_always_succeeds(self):
        estimate = estimate_protocol_success(
            SampledIndexProtocol(fraction=1.0),
            _mixed_sampler(20, 3),
            trials=20,
            seed=4,
        )
        assert estimate.probability == 1.0

    def test_success_grows_with_fraction_on_intersecting_inputs(self):
        k, t = 40, 2
        probabilities = []
        for fraction in (0.2, 0.6, 1.0):
            estimate = estimate_protocol_success(
                SampledIndexProtocol(fraction=fraction),
                _intersecting_sampler(k, t),
                trials=60,
                seed=5,
            )
            probabilities.append(estimate.probability)
        assert probabilities[0] < probabilities[2]
        assert probabilities[2] == 1.0

    def test_two_thirds_threshold_matches_theory(self):
        """Success on intersecting inputs ~ fraction; 0.8 clears 2/3."""
        estimate = estimate_protocol_success(
            SampledIndexProtocol(fraction=0.8),
            _intersecting_sampler(50, 2),
            trials=80,
            seed=6,
        )
        assert abs(estimate.probability - 0.8) < 0.15
