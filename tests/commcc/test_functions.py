"""Tests for the disjointness functions and the promise classifier."""

import pytest

from repro.commcc import (
    BitString,
    PromiseCase,
    PromiseViolationError,
    classify_promise_case,
    multiparty_set_disjointness,
    promise_pairwise_disjointness,
    two_party_disjointness,
    unique_intersection_index,
)


def strings(*index_lists, k=8):
    return [BitString.from_indices(k, indices) for indices in index_lists]


class TestTwoParty:
    def test_disjoint(self):
        x, y = strings([0, 1], [2, 3])
        assert two_party_disjointness(x, y)

    def test_intersecting(self):
        x, y = strings([0, 1], [1, 2])
        assert not two_party_disjointness(x, y)


class TestMultiparty:
    def test_true_when_no_common_index(self):
        # Pairwise intersections exist but no index is in all three.
        assert multiparty_set_disjointness(strings([0, 1], [1, 2], [2, 0]))

    def test_false_when_common_index(self):
        assert not multiparty_set_disjointness(strings([0, 5], [5, 2], [5]))

    def test_single_player_raises(self):
        with pytest.raises(ValueError):
            multiparty_set_disjointness(strings([0]))


class TestClassifier:
    def test_uniquely_intersecting(self):
        case = classify_promise_case(strings([3], [3, 4], [3, 5]))
        assert case is PromiseCase.UNIQUELY_INTERSECTING

    def test_pairwise_disjoint(self):
        case = classify_promise_case(strings([0], [1], [2]))
        assert case is PromiseCase.PAIRWISE_DISJOINT

    def test_outside_promise(self):
        # x1 and x2 intersect on 1, but no common index for all three.
        case = classify_promise_case(strings([1], [1, 2], [3]))
        assert case is PromiseCase.OUTSIDE_PROMISE

    def test_all_empty_counts_as_disjoint(self):
        case = classify_promise_case(strings([], [], []))
        assert case is PromiseCase.PAIRWISE_DISJOINT

    def test_single_player_raises(self):
        with pytest.raises(ValueError):
            classify_promise_case(strings([0]))


class TestPromiseFunction:
    def test_true_on_disjoint(self):
        assert promise_pairwise_disjointness(strings([0], [1], [2]))

    def test_false_on_intersecting(self):
        assert not promise_pairwise_disjointness(strings([7], [7], [7]))

    def test_raises_outside_promise(self):
        with pytest.raises(PromiseViolationError):
            promise_pairwise_disjointness(strings([0], [0, 1], [2]))


class TestUniqueIntersectionIndex:
    def test_returns_common_index(self):
        assert unique_intersection_index(strings([2, 3], [3, 4], [3])) == 3

    def test_returns_none_when_empty(self):
        assert unique_intersection_index(strings([0], [1], [2])) is None

    def test_multiple_common_indices_raise(self):
        with pytest.raises(PromiseViolationError):
            unique_intersection_index(strings([1, 2], [1, 2], [1, 2]))
