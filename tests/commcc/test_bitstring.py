"""Tests for BitString."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.commcc import BitString, all_pairwise_disjoint, common_intersection


class TestConstruction:
    def test_zeros(self):
        s = BitString.zeros(5)
        assert s.popcount() == 0
        assert len(s) == 5

    def test_ones(self):
        s = BitString.ones(4)
        assert s.popcount() == 4

    def test_from_indices(self):
        s = BitString.from_indices(6, [0, 3, 5])
        assert s.indices() == [0, 3, 5]

    def test_from_indices_out_of_range(self):
        with pytest.raises(ValueError):
            BitString.from_indices(3, [3])

    def test_from_bits(self):
        s = BitString.from_bits([1, 0, 1])
        assert s[0] == 1 and s[1] == 0 and s[2] == 1

    def test_from_bits_invalid(self):
        with pytest.raises(ValueError):
            BitString.from_bits([0, 2])

    def test_mask_too_large(self):
        with pytest.raises(ValueError):
            BitString(2, 0b100)

    def test_negative_length(self):
        with pytest.raises(ValueError):
            BitString(-1)

    def test_zero_length(self):
        assert len(BitString.zeros(0)) == 0


class TestAccess:
    def test_getitem_out_of_range(self):
        with pytest.raises(IndexError):
            BitString.zeros(3)[3]

    def test_iter(self):
        assert list(BitString.from_bits([1, 0, 1])) == [1, 0, 1]

    def test_to_bits(self):
        assert BitString.from_bits([1, 0, 1]).to_bits() == "101"

    def test_repr_short(self):
        assert "101" in repr(BitString.from_bits([1, 0, 1]))

    def test_repr_long(self):
        s = BitString.ones(100)
        assert "popcount=100" in repr(s)


class TestSetOperations:
    def test_intersects(self):
        a = BitString.from_indices(5, [1, 2])
        b = BitString.from_indices(5, [2, 3])
        assert a.intersects(b)

    def test_disjoint(self):
        a = BitString.from_indices(5, [0, 1])
        b = BitString.from_indices(5, [2, 3])
        assert a.is_disjoint_from(b)
        assert not a.intersects(b)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            BitString.zeros(3).intersects(BitString.zeros(4))

    def test_and_or_xor_invert(self):
        a = BitString.from_bits([1, 1, 0])
        b = BitString.from_bits([0, 1, 1])
        assert (a & b).to_bits() == "010"
        assert (a | b).to_bits() == "111"
        assert (a ^ b).to_bits() == "101"
        assert (~a).to_bits() == "001"

    def test_equality_and_hash(self):
        a = BitString.from_bits([1, 0])
        b = BitString.from_bits([1, 0])
        assert a == b
        assert hash(a) == hash(b)
        assert a != BitString.from_bits([0, 1])
        assert a != BitString(3, a.mask)


class TestMultiString:
    def test_all_pairwise_disjoint_true(self):
        strings = [
            BitString.from_indices(6, [0]),
            BitString.from_indices(6, [1, 2]),
            BitString.from_indices(6, [3]),
        ]
        assert all_pairwise_disjoint(strings)

    def test_all_pairwise_disjoint_false(self):
        strings = [
            BitString.from_indices(6, [0, 1]),
            BitString.from_indices(6, [1]),
        ]
        assert not all_pairwise_disjoint(strings)

    def test_empty_strings_are_disjoint(self):
        assert all_pairwise_disjoint([BitString.zeros(4)] * 3)

    def test_common_intersection(self):
        strings = [
            BitString.from_indices(5, [0, 2, 4]),
            BitString.from_indices(5, [2, 4]),
            BitString.from_indices(5, [2, 3]),
        ]
        assert common_intersection(strings).indices() == [2]

    def test_common_intersection_empty_input_raises(self):
        with pytest.raises(ValueError):
            common_intersection([])


@settings(max_examples=60, deadline=None)
@given(
    masks=st.lists(st.integers(0, 2 ** 16 - 1), min_size=2, max_size=4),
)
def test_hypothesis_pairwise_disjoint_matches_naive(masks):
    strings = [BitString(16, mask) for mask in masks]
    naive = all(
        strings[i].is_disjoint_from(strings[j])
        for i in range(len(strings))
        for j in range(i + 1, len(strings))
    )
    assert all_pairwise_disjoint(strings) == naive


@settings(max_examples=60, deadline=None)
@given(a=st.integers(0, 255), b=st.integers(0, 255))
def test_hypothesis_disjoint_iff_and_zero(a, b):
    x, y = BitString(8, a), BitString(8, b)
    assert x.is_disjoint_from(y) == ((x & y).popcount() == 0)
    # Paper's definition: sum_j x_j * y_j == 0.
    assert x.is_disjoint_from(y) == (sum(p * q for p, q in zip(x, y)) == 0)
