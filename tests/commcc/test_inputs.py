"""Tests for the promise-respecting input generators."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.commcc import (
    PromiseCase,
    all_promise_inputs,
    classify_promise_case,
    flat_to_index_pair,
    index_pair_to_flat,
    pairwise_disjoint_inputs,
    promise_inputs,
    uniquely_intersecting_inputs,
)


class TestPairwiseDisjoint:
    def test_output_shape(self, rng):
        strings = pairwise_disjoint_inputs(10, 3, rng=rng)
        assert len(strings) == 3
        assert all(s.length == 10 for s in strings)

    def test_promise_respected(self):
        for seed in range(10):
            strings = pairwise_disjoint_inputs(20, 4, rng=random.Random(seed))
            assert classify_promise_case(strings) is PromiseCase.PAIRWISE_DISJOINT

    def test_density_zero_gives_empty(self, rng):
        strings = pairwise_disjoint_inputs(10, 3, rng=rng, density=0.0)
        assert all(s.popcount() == 0 for s in strings)

    def test_density_one_covers_everything(self, rng):
        strings = pairwise_disjoint_inputs(10, 3, rng=rng, density=1.0)
        total = sum(s.popcount() for s in strings)
        assert total == 10

    def test_bad_density_raises(self, rng):
        with pytest.raises(ValueError):
            pairwise_disjoint_inputs(5, 2, rng=rng, density=2.0)

    def test_bad_kt_raise(self, rng):
        with pytest.raises(ValueError):
            pairwise_disjoint_inputs(0, 2, rng=rng)
        with pytest.raises(ValueError):
            pairwise_disjoint_inputs(5, 1, rng=rng)


class TestUniquelyIntersecting:
    def test_promise_respected(self):
        for seed in range(10):
            strings = uniquely_intersecting_inputs(20, 4, rng=random.Random(seed))
            assert (
                classify_promise_case(strings)
                is PromiseCase.UNIQUELY_INTERSECTING
            )

    def test_requested_common_index(self, rng):
        strings = uniquely_intersecting_inputs(10, 3, rng=rng, common_index=7)
        assert all(s[7] == 1 for s in strings)

    def test_common_index_out_of_range(self, rng):
        with pytest.raises(ValueError):
            uniquely_intersecting_inputs(5, 2, rng=rng, common_index=5)

    def test_common_intersection_is_singleton(self):
        for seed in range(10):
            strings = uniquely_intersecting_inputs(15, 3, rng=random.Random(seed))
            common = strings[0]
            for s in strings[1:]:
                common = common & s
            assert common.popcount() == 1


class TestPromiseInputs:
    def test_dispatch(self, rng):
        intersecting = promise_inputs(8, 3, intersecting=True, rng=rng)
        disjoint = promise_inputs(8, 3, intersecting=False, rng=rng)
        assert (
            classify_promise_case(intersecting)
            is PromiseCase.UNIQUELY_INTERSECTING
        )
        assert classify_promise_case(disjoint) is PromiseCase.PAIRWISE_DISJOINT


class TestExhaustiveEnumeration:
    def test_enumerates_only_promise_inputs(self):
        seen = 0
        for strings, is_disjoint in all_promise_inputs(2, 2):
            seen += 1
            case = classify_promise_case(strings)
            expected = (
                PromiseCase.PAIRWISE_DISJOINT
                if is_disjoint
                else PromiseCase.UNIQUELY_INTERSECTING
            )
            assert case is expected
        assert seen > 0

    def test_count_for_k1_t2(self):
        # Strings of length 1: (0,0), (0,1), (1,0) disjoint; (1,1) intersecting.
        results = list(all_promise_inputs(1, 2))
        assert len(results) == 4
        assert sum(1 for _, disjoint in results if disjoint) == 3


class TestPairFlattening:
    def test_roundtrip(self):
        k = 5
        for m1 in range(k):
            for m2 in range(k):
                flat = index_pair_to_flat(m1, m2, k)
                assert flat_to_index_pair(flat, k) == (m1, m2)

    def test_range_checks(self):
        with pytest.raises(ValueError):
            index_pair_to_flat(5, 0, 5)
        with pytest.raises(ValueError):
            flat_to_index_pair(25, 5)


@settings(max_examples=40, deadline=None)
@given(
    k=st.integers(2, 30),
    t=st.integers(2, 5),
    seed=st.integers(0, 1000),
    intersecting=st.booleans(),
)
def test_hypothesis_generators_respect_promise(k, t, seed, intersecting):
    strings = promise_inputs(k, t, intersecting, rng=random.Random(seed))
    case = classify_promise_case(strings)
    if intersecting:
        assert case is PromiseCase.UNIQUELY_INTERSECTING
    else:
        assert case is PromiseCase.PAIRWISE_DISJOINT
