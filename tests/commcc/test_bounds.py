"""Tests for the communication complexity bound formulas."""

import math

import pytest

from repro.commcc import (
    candidate_index_upper_bound,
    full_reveal_upper_bound,
    local_optima_exchange_cost,
    pairwise_disjointness_cc_lower_bound,
    two_party_disjointness_cc_lower_bound,
)


class TestTheorem3Formula:
    def test_two_party_degenerates_to_k(self):
        assert pairwise_disjointness_cc_lower_bound(100, 2) == pytest.approx(50.0)

    def test_scales_linearly_in_k(self):
        a = pairwise_disjointness_cc_lower_bound(100, 4)
        b = pairwise_disjointness_cc_lower_bound(200, 4)
        assert b == pytest.approx(2 * a)

    def test_decreases_in_t(self):
        values = [
            pairwise_disjointness_cc_lower_bound(1000, t) for t in (2, 3, 4, 8, 16)
        ]
        assert values == sorted(values, reverse=True)

    def test_known_value(self):
        assert pairwise_disjointness_cc_lower_bound(64, 4) == pytest.approx(
            64 / (4 * 2)
        )

    def test_constant_scales(self):
        assert pairwise_disjointness_cc_lower_bound(
            64, 4, constant=2.0
        ) == pytest.approx(2 * pairwise_disjointness_cc_lower_bound(64, 4))

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            pairwise_disjointness_cc_lower_bound(0, 2)
        with pytest.raises(ValueError):
            pairwise_disjointness_cc_lower_bound(5, 1)


class TestOtherBounds:
    def test_two_party_linear(self):
        assert two_party_disjointness_cc_lower_bound(77) == 77

    def test_full_reveal(self):
        assert full_reveal_upper_bound(10, 3) == 30

    def test_candidate_index_formula(self):
        assert candidate_index_upper_bound(16, 4) == 16 + 1 + 4 + 2

    def test_upper_bounds_dominate_lower_bound(self):
        """Sanity: the protocols we can run cost at least the LB formula."""
        for k in (16, 64, 256):
            for t in (2, 3, 8):
                lower = pairwise_disjointness_cc_lower_bound(k, t)
                assert candidate_index_upper_bound(k, t) >= lower
                assert full_reveal_upper_bound(k, t) >= lower

    def test_local_optima_cost_logarithmic(self):
        assert local_optima_exchange_cost(4, max_weight=255) == 4 * 8

    def test_local_optima_invalid(self):
        with pytest.raises(ValueError):
            local_optima_exchange_cost(1, 10)
        with pytest.raises(ValueError):
            local_optima_exchange_cost(3, 0)
