"""Tests for the fooling-set lower bound machinery."""

import math

import pytest

from repro.commcc import (
    BitString,
    disjointness_fooling_set,
    fooling_set_bound,
    greedy_fooling_set,
    is_fooling_set,
    two_party_disjointness,
    verified_disjointness_bound,
)


class TestIsFoolingSet:
    def test_canonical_disjointness_set(self):
        pairs = disjointness_fooling_set(4)
        assert is_fooling_set(two_party_disjointness, pairs, value=True)

    def test_rejects_wrong_value_on_diagonal(self):
        pairs = [
            (BitString.from_bits([1, 0]), BitString.from_bits([1, 0])),
        ]
        assert not is_fooling_set(two_party_disjointness, pairs, value=True)

    def test_rejects_non_fooling_pair(self):
        # Both crossed pairs stay disjoint -> not fooling.
        pairs = [
            (BitString.from_bits([0, 0, 0]), BitString.from_bits([0, 0, 0])),
            (BitString.from_bits([1, 0, 0]), BitString.from_bits([0, 0, 0])),
        ]
        assert not is_fooling_set(two_party_disjointness, pairs, value=True)

    def test_singleton_is_fooling(self):
        pairs = [(BitString.from_bits([1]), BitString.from_bits([0]))]
        assert is_fooling_set(two_party_disjointness, pairs, value=True)


class TestDisjointnessFoolingSet:
    @pytest.mark.parametrize("k", [1, 2, 4, 6])
    def test_size_is_2_to_k(self, k):
        assert len(disjointness_fooling_set(k)) == 2 ** k

    def test_pairs_partition_the_universe(self):
        for x, y in disjointness_fooling_set(3):
            assert (x | y) == BitString.ones(3)
            assert x.is_disjoint_from(y)

    def test_size_limit(self):
        with pytest.raises(ValueError):
            disjointness_fooling_set(20)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            disjointness_fooling_set(0)


class TestBounds:
    @pytest.mark.parametrize("k", [1, 3, 6, 8])
    def test_verified_bound_equals_k(self, k):
        assert verified_disjointness_bound(k) == pytest.approx(k)

    def test_bound_formula(self):
        pairs = disjointness_fooling_set(5)
        assert fooling_set_bound(pairs) == pytest.approx(5)

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError):
            fooling_set_bound([])


class TestGreedySearch:
    def test_finds_large_set_for_disjointness(self):
        pairs = greedy_fooling_set(two_party_disjointness, 4)
        assert is_fooling_set(two_party_disjointness, pairs, value=True)
        # Greedy must recover at least the canonical 2^k pairs' strength
        # up to a constant — in practice it finds exactly 2^k here.
        assert len(pairs) >= 2 ** 4

    def test_result_always_verifies(self):
        def equality(x, y):
            return x == y

        pairs = greedy_fooling_set(equality, 3, value=True)
        assert is_fooling_set(equality, pairs, value=True)
        # Equality's fooling set is the diagonal: exactly 2^k pairs.
        assert len(pairs) == 2 ** 3

    def test_k_limit(self):
        with pytest.raises(ValueError):
            greedy_fooling_set(two_party_disjointness, 12)

    def test_max_pairs_cap(self):
        pairs = greedy_fooling_set(two_party_disjointness, 4, max_pairs=5)
        assert len(pairs) == 5
