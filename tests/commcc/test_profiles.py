"""Tests for pairwise intersection profiles (the sub-case explosion)."""

import itertools

import pytest

from repro.commcc import (
    BitString,
    num_possible_profiles,
    pairwise_intersection_profile,
    promise_inputs,
    promise_profiles,
    realizable_profiles,
    witness_for_profile,
)
import random


class TestProfile:
    def test_empty_profile_for_disjoint(self):
        strings = [
            BitString.from_indices(6, [0]),
            BitString.from_indices(6, [1]),
            BitString.from_indices(6, [2]),
        ]
        assert pairwise_intersection_profile(strings) == frozenset()

    def test_partial_profile(self):
        strings = [
            BitString.from_indices(6, [0]),
            BitString.from_indices(6, [0, 1]),
            BitString.from_indices(6, [2]),
        ]
        assert pairwise_intersection_profile(strings) == frozenset({(0, 1)})

    def test_single_player_rejected(self):
        with pytest.raises(ValueError):
            pairwise_intersection_profile([BitString.zeros(3)])


class TestCounting:
    def test_formula(self):
        assert num_possible_profiles(2) == 2
        assert num_possible_profiles(3) == 8
        assert num_possible_profiles(4) == 64
        assert num_possible_profiles(6) == 2 ** 15

    def test_all_profiles_realizable_with_enough_indices(self):
        # C(3,2) = 3 indices suffice for t = 3.
        assert len(realizable_profiles(3, 3)) == 8

    def test_few_indices_restrict_profiles(self):
        # One index for 3 players: a pair intersecting forces sharing
        # the single index, so some patterns are impossible.
        profiles = realizable_profiles(1, 3)
        assert len(profiles) < 8

    def test_enumeration_limit(self):
        with pytest.raises(ValueError):
            realizable_profiles(5, 4)

    def test_invalid_t(self):
        with pytest.raises(ValueError):
            num_possible_profiles(1)


class TestWitness:
    @pytest.mark.parametrize("t", [2, 3, 4, 5])
    def test_every_profile_witnessed(self, t):
        all_pairs = list(itertools.combinations(range(t), 2))
        # Test a sample of profiles (all for small t).
        space = (
            [frozenset(s) for s in _powerset(all_pairs)]
            if t <= 3
            else [frozenset(), frozenset(all_pairs), frozenset(all_pairs[:2])]
        )
        for profile in space:
            strings = witness_for_profile(profile, t)
            assert pairwise_intersection_profile(strings) == profile

    def test_invalid_pair_rejected(self):
        with pytest.raises(ValueError):
            witness_for_profile(frozenset({(0, 9)}), 3)


class TestPromiseCollapse:
    def test_promise_leaves_two_profiles(self):
        empty, complete = promise_profiles(4)
        assert empty == frozenset()
        assert len(complete) == 6

    @pytest.mark.parametrize("t", [2, 3, 4])
    def test_promise_inputs_land_on_the_two_profiles(self, t):
        empty, complete = promise_profiles(t)
        for seed in range(6):
            disjoint = promise_inputs(12, t, False, rng=random.Random(seed))
            assert pairwise_intersection_profile(disjoint) == empty
            intersecting = promise_inputs(12, t, True, rng=random.Random(seed))
            assert pairwise_intersection_profile(intersecting) == complete


def _powerset(items):
    for r in range(len(items) + 1):
        yield from itertools.combinations(items, r)
