"""Tests for JSON serialization of experiment outputs."""

import json

import pytest

from repro.core import (
    LinearLowerBoundExperiment,
    claim_check_to_dict,
    claim_checks_to_json,
    gap_from_dict,
    gap_to_dict,
    parameters_from_dict,
    parameters_to_dict,
    report_to_dict,
    report_to_json,
    verify_all_linear,
)
from repro.core.claims import ClaimCheck
from repro.core.experiments import GapMeasurement
from repro.gadgets import GadgetParameters


class TestParameters:
    def test_roundtrip(self):
        params = GadgetParameters(ell=3, alpha=2, t=4, k=10)
        assert parameters_from_dict(parameters_to_dict(params)) == params

    def test_dict_fields(self):
        data = parameters_to_dict(GadgetParameters(ell=2, alpha=1, t=2))
        assert data == {"ell": 2, "alpha": 1, "t": 2, "k": 3, "q": 3}

    def test_from_dict_without_k(self):
        params = parameters_from_dict({"ell": 2, "alpha": 1, "t": 2})
        assert params.k == 3


class TestGap:
    def test_roundtrip_preserves_derived_values(self):
        gap = GapMeasurement([10, 11], [7, 8], high_threshold=10, low_threshold=9)
        rebuilt = gap_from_dict(gap_to_dict(gap))
        assert rebuilt.measured_ratio == gap.measured_ratio
        assert rebuilt.claims_hold == gap.claims_hold

    def test_json_serializable(self):
        gap = GapMeasurement([10], [7], 10, 9)
        json.dumps(gap_to_dict(gap))


class TestClaimChecks:
    def test_dict_fields(self):
        check = ClaimCheck("Claim 3", True, 27, 27, ">=", detail="x")
        data = claim_check_to_dict(check)
        assert data["name"] == "Claim 3"
        assert data["direction"] == ">="

    def test_batch_json(self, figure_params):
        checks = verify_all_linear(figure_params, num_samples=1)
        parsed = json.loads(claim_checks_to_json(checks))
        assert len(parsed) == len(checks)
        assert all(entry["holds"] for entry in parsed)


class TestReport:
    @pytest.fixture(scope="class")
    def report(self, figure_params):
        return LinearLowerBoundExperiment(figure_params, warmup=True).run(2)

    def test_dict_structure(self, report):
        data = report_to_dict(report)
        assert data["num_nodes"] == 24
        assert data["gap"]["claims_hold"] is True
        assert data["round_bound"]["cut"] == report.cut

    def test_json_parses(self, report):
        parsed = json.loads(report_to_json(report))
        assert parsed["parameters"]["ell"] == 2
        assert parsed["cut"] == parsed["expected_cut"]
