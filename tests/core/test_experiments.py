"""Tests for the end-to-end experiment pipelines."""

import pytest

from repro.core import (
    GapMeasurement,
    LinearLowerBoundExperiment,
    QuadraticLowerBoundExperiment,
)
from repro.gadgets import GadgetParameters


class TestGapMeasurement:
    def test_ratios(self):
        gap = GapMeasurement([10, 12], [6, 7], high_threshold=10, low_threshold=7)
        assert gap.min_intersecting == 10
        assert gap.max_disjoint == 7
        assert gap.measured_ratio == pytest.approx(0.7)
        assert gap.claimed_ratio == pytest.approx(0.7)
        assert gap.claims_hold

    def test_violations_detected(self):
        gap = GapMeasurement([9], [8], high_threshold=10, low_threshold=7)
        assert not gap.high_side_holds
        assert not gap.low_side_holds
        assert not gap.claims_hold

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            GapMeasurement([], [1], 2, 1)


class TestLinearExperiment:
    def test_warmup_run(self, figure_params):
        report = LinearLowerBoundExperiment(figure_params, warmup=True).run(
            num_samples=2
        )
        assert report.gap.claims_hold
        assert report.name.startswith("Lemma 1")
        assert report.cut == report.expected_cut == 18
        assert report.num_nodes == 24

    def test_meaningful_t3_run(self, meaningful_params_t3):
        report = LinearLowerBoundExperiment(meaningful_params_t3).run(num_samples=2)
        assert report.gap.claims_hold
        assert report.gap.measured_ratio < 1
        assert report.round_bound.value > 0

    def test_deterministic_given_seed(self, figure_params):
        a = LinearLowerBoundExperiment(figure_params, warmup=True, seed=3).run(2)
        b = LinearLowerBoundExperiment(figure_params, warmup=True, seed=3).run(2)
        assert a.gap.intersecting_optima == b.gap.intersecting_optima
        assert a.gap.disjoint_optima == b.gap.disjoint_optima

    def test_summary_rows_complete(self, figure_params):
        report = LinearLowerBoundExperiment(figure_params, warmup=True).run(2)
        labels = [label for label, _ in report.summary_rows()]
        assert "cut (measured)" in labels
        assert "measured gap ratio" in labels
        assert "Corollary 1 round bound" in labels

    def test_alpha_two_parameters(self):
        """The message length alpha = 2 regime: k = q^2 = 49 indices."""
        params = GadgetParameters(ell=5, alpha=2, t=2)
        assert params.linear_gap_is_meaningful()
        report = LinearLowerBoundExperiment(params).run(num_samples=2)
        assert report.gap.claims_hold
        assert report.num_nodes == 196

    def test_measured_ratio_shrinks_with_t(self):
        """The headline shape: more players push the gap toward 1/2."""
        ratios = []
        for t in (2, 3, 4):
            params = GadgetParameters(ell=t + 1, alpha=1, t=t)
            report = LinearLowerBoundExperiment(params).run(num_samples=2)
            ratios.append(report.gap.measured_ratio)
        assert ratios == sorted(ratios, reverse=True)


class TestQuadraticExperiment:
    def test_run_figure_scale(self, figure_params):
        report = QuadraticLowerBoundExperiment(figure_params).run(num_samples=2)
        assert report.name.startswith("Theorem 2")
        assert report.gap.claims_hold  # both inequalities, even if gap loose
        assert report.num_nodes == 48

    def test_round_bound_uses_k_squared(self, figure_params):
        report = QuadraticLowerBoundExperiment(figure_params).run(num_samples=1)
        assert report.round_bound.input_length == figure_params.k ** 2

    def test_measured_ratio_below_one(self, figure_params):
        report = QuadraticLowerBoundExperiment(figure_params).run(num_samples=2)
        assert report.gap.measured_ratio < 1
