"""Tests for the one-shot reproduction suite."""

import json

import pytest

from repro.core import SuiteResult, run_reproduction_suite


@pytest.fixture(scope="module")
def suite():
    return run_reproduction_suite(max_t=3, num_samples=2, seed=1)


class TestSuite:
    def test_everything_holds(self, suite):
        assert suite.all_claims_hold

    def test_claims_present(self, suite):
        names = {check.name for check in suite.claim_checks}
        assert {"Property 1", "Claim 3", "Claim 5", "Claim 6", "Claim 7"} <= names

    def test_linear_sweep_length(self, suite):
        assert [r.params.t for r in suite.linear_reports] == [2, 3]

    def test_quadratic_sweep(self, suite):
        assert [r.params.t for r in suite.quadratic_reports] == [2, 3]

    def test_linear_ratios_descend(self, suite):
        ratios = [r.gap.measured_ratio for r in suite.linear_reports]
        assert ratios == sorted(ratios, reverse=True)

    def test_simulation_consistent(self, suite):
        assert suite.simulation_rows
        assert all(row[-1] for row in suite.simulation_rows)

    def test_render(self, suite):
        text = suite.render()
        assert "REPRODUCTION SUITE" in text
        assert "Theorem 1" in text
        assert "ALL CLAIMS HOLD" in text

    def test_json(self, suite):
        parsed = json.loads(suite.to_json())
        assert parsed["all_claims_hold"] is True
        assert len(parsed["linear"]) == 2

    def test_skip_simulation(self):
        quick = run_reproduction_suite(
            max_t=2, num_samples=1, include_simulation=False
        )
        assert quick.simulation_rows == []
        assert quick.all_claims_hold

    def test_failure_detected_by_flag(self):
        result = SuiteResult()
        from repro.core.claims import ClaimCheck

        result.claim_checks.append(ClaimCheck("fake", False, 1, 0, "<="))
        assert not result.all_claims_hold


class TestCliReport:
    def test_cli_report_runs(self, capsys):
        from repro.cli import main

        assert main(["report", "--max-t", "2", "--samples", "1"]) == 0
        assert "ALL CLAIMS HOLD" in capsys.readouterr().out

    def test_cli_report_json(self, capsys):
        from repro.cli import main

        assert main(["report", "--max-t", "2", "--samples", "1", "--json"]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["all_claims_hold"] is True
