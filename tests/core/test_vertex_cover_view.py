"""Tests for the vertex-cover dual view of the families."""

import pytest

from repro.core import DualClaimMeasurement, measure_dual_claims
from repro.gadgets import GadgetParameters


class TestDualClaims:
    @pytest.mark.parametrize(
        "params",
        [
            GadgetParameters(ell=3, alpha=1, t=2),
            GadgetParameters(ell=4, alpha=1, t=3),
        ],
        ids=repr,
    )
    def test_dual_claims_hold(self, params):
        measurement = measure_dual_claims(params, num_samples=3, seed=2)
        assert measurement.dual_claim3_holds
        assert measurement.dual_claim5_holds
        assert measurement.holds

    def test_warmup_variant(self):
        params = GadgetParameters(ell=2, alpha=1, t=2)
        measurement = measure_dual_claims(params, num_samples=3, warmup=True)
        assert measurement.holds

    def test_absolute_covers_do_not_separate(self):
        """The paper's point: the IS gap does not transfer to VC for free."""
        params = GadgetParameters(ell=4, alpha=1, t=3)
        measurement = measure_dual_claims(params, num_samples=4, seed=0)
        assert measurement.absolute_covers_overlap

    def test_rows_are_complement_consistent(self):
        """Each row satisfies VC = W − IS implicitly: bound arithmetic."""
        params = GadgetParameters(ell=3, alpha=1, t=2)
        measurement = measure_dual_claims(params, num_samples=2, seed=5)
        for total, cover, bound in measurement.intersecting_rows:
            # dual bound = W − high: the cover leaves at least `high` weight.
            assert total - cover >= total - bound

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            DualClaimMeasurement([], [(1, 1, 1)])
