"""Tests for the claim-by-claim verifiers (the paper's proof steps)."""

import pytest

from repro.core import (
    verify_all_linear,
    verify_all_quadratic,
    verify_claim1,
    verify_claim2,
    verify_claim3,
    verify_claim4,
    verify_claim5,
    verify_claim6,
    verify_claim7,
    verify_property1,
    verify_property2,
    verify_property3,
)
from repro.core.claims import ClaimCheck
from repro.gadgets import GadgetParameters, LinearConstruction, QuadraticConstruction


class TestClaimCheckType:
    def test_repr_shows_status(self):
        check = ClaimCheck("X", True, 1, 2, "<=")
        assert "OK" in repr(check)
        check = ClaimCheck("X", False, 3, 2, "<=")
        assert "VIOLATED" in repr(check)

    def test_direction_validated(self):
        with pytest.raises(ValueError):
            ClaimCheck("X", True, 1, 2, "==")


class TestProperties:
    def test_property1(self, linear_fig_t3):
        assert verify_property1(linear_fig_t3).holds

    def test_property2(self, linear_fig_t3):
        check = verify_property2(linear_fig_t3)
        assert check.holds
        assert check.measured >= linear_fig_t3.params.ell

    def test_property3(self, linear_fig):
        assert verify_property3(linear_fig, num_random_sets=8).holds


class TestTwoPartyClaims:
    def test_claim1(self, linear_fig):
        check = verify_claim1(linear_fig)
        assert check.holds
        assert check.measured == 4 * 2 + 2 * 1  # 4l + 2a

    def test_claim1_needs_t2(self, linear_fig_t3):
        with pytest.raises(ValueError):
            verify_claim1(linear_fig_t3)

    def test_claim2(self, linear_fig):
        check = verify_claim2(linear_fig, num_samples=4)
        assert check.holds
        assert check.bound == 3 * 2 + 2 * 1 + 1

    def test_claim2_needs_t2(self, linear_fig_t3):
        with pytest.raises(ValueError):
            verify_claim2(linear_fig_t3)


class TestGeneralTClaims:
    def test_claim3(self, linear_meaningful):
        check = verify_claim3(linear_meaningful)
        assert check.holds
        assert check.measured >= check.bound

    def test_claim4(self, linear_meaningful):
        assert verify_claim4(linear_meaningful).holds

    def test_claim5(self, linear_meaningful):
        check = verify_claim5(linear_meaningful, num_samples=3)
        assert check.holds

    def test_claim5_measured_below_meaningful_gap(self, linear_meaningful):
        """At meaningful parameters the disjoint OPT stays under the high side."""
        params = linear_meaningful.params
        check = verify_claim5(linear_meaningful, num_samples=3)
        assert check.measured < params.linear_high_threshold()


class TestQuadraticClaims:
    def test_claim6(self, quadratic_fig):
        check = verify_claim6(quadratic_fig)
        assert check.holds
        assert check.measured == check.bound == 20

    def test_claim7(self, quadratic_fig):
        check = verify_claim7(quadratic_fig, num_samples=2)
        assert check.holds
        # The measured optimum is far below the loose claimed bound.
        assert check.measured < check.bound


class TestAlphaTwo:
    """The alpha = 2 regime: k = q^2 indices, two-symbol messages."""

    @pytest.fixture(scope="class")
    def construction_a2(self):
        return LinearConstruction(GadgetParameters(ell=5, alpha=2, t=2))

    def test_property1_alpha2(self, construction_a2):
        from repro.core import verify_property1

        assert verify_property1(construction_a2).holds

    def test_property3_bound_is_two(self, construction_a2):
        from repro.core import verify_property3

        check = verify_property3(construction_a2, num_random_sets=5)
        assert check.holds
        assert check.bound == 2

    def test_claims_3_and_5_alpha2(self, construction_a2):
        from repro.core import verify_claim3, verify_claim5

        assert verify_claim3(construction_a2).holds
        assert verify_claim5(construction_a2, num_samples=2).holds


class TestBundles:
    def test_verify_all_linear_t2_includes_warmup_claims(self, figure_params):
        checks = verify_all_linear(figure_params, num_samples=2)
        names = {check.name for check in checks}
        assert "Claim 1" in names and "Claim 2" in names
        assert all(check.holds for check in checks)

    def test_verify_all_linear_t3(self, meaningful_params_t3):
        checks = verify_all_linear(meaningful_params_t3, num_samples=2)
        names = {check.name for check in checks}
        assert "Claim 1" not in names
        assert all(check.holds for check in checks)

    def test_verify_all_quadratic(self, figure_params):
        checks = verify_all_quadratic(figure_params, num_samples=2)
        assert {check.name for check in checks} == {"Claim 6", "Claim 7"}
        assert all(check.holds for check in checks)
