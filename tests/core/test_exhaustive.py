"""Exhaustive verification over *every* promise input at tiny k.

The sampled tests elsewhere check Definition 4's condition 2 on random
promise inputs; here we close the gap completely for small universes:
every single promise-respecting input vector is enumerated and the
family's predicate is compared against f.  This is the strongest
statement the finite instances admit.
"""

import pytest

from repro.commcc import BitString, all_promise_inputs
from repro.framework import verify_locality
from repro.gadgets import GadgetParameters, LinearMaxISFamily
from repro.maxis import max_weight_independent_set


@pytest.fixture(scope="module")
def warmup_family():
    # ell=2, alpha=1 -> k=3: 2^(3*2)=64 input pairs, ~40 promise ones.
    return LinearMaxISFamily(GadgetParameters(ell=2, alpha=1, t=2), warmup=True)


class TestExhaustiveWarmup:
    def test_condition2_for_every_promise_input(self, warmup_family):
        checked = 0
        for inputs, is_disjoint in all_promise_inputs(3, 2):
            graph = warmup_family.build(inputs)
            assert warmup_family.predicate(graph) == is_disjoint
            assert warmup_family.function_value(inputs) == is_disjoint
            checked += 1
        assert checked > 30  # sanity: the enumeration is non-trivial

    def test_claim_bounds_for_every_promise_input(self, warmup_family):
        params = warmup_family.params
        high = params.linear_high_threshold()
        low = params.two_party_low_threshold()
        for inputs, is_disjoint in all_promise_inputs(3, 2):
            optimum = max_weight_independent_set(warmup_family.build(inputs)).weight
            if is_disjoint:
                assert optimum <= low  # Claim 2, exhaustively
            else:
                assert optimum >= high  # Claim 1, exhaustively

    def test_locality_against_every_single_coordinate_change(self, warmup_family):
        base = [BitString.zeros(3), BitString.zeros(3)]
        variants = []
        for player in range(2):
            for mask in range(1, 8):
                changed = list(base)
                changed[player] = BitString(3, mask)
                variants.append(changed)
        verify_locality(warmup_family, base, variants)


class TestExhaustiveTinyK:
    def test_k2_t2_all_promise_inputs(self):
        """k=2 via truncation: only the first 2 codewords are used."""
        params = GadgetParameters(ell=2, alpha=1, t=2, k=2)
        family = LinearMaxISFamily(params, warmup=True)
        for inputs, is_disjoint in all_promise_inputs(2, 2):
            graph = family.build(inputs)
            assert family.predicate(graph) == is_disjoint

    def test_three_players_exhaustive_k2(self):
        """Every promise input for t=3 at truncated k=2 (meaningful gap)."""
        params = GadgetParameters(ell=4, alpha=1, t=3, k=2)
        assert params.linear_gap_is_meaningful()
        family = LinearMaxISFamily(params)
        checked = 0
        for inputs, is_disjoint in all_promise_inputs(2, 3):
            graph = family.build(inputs)
            assert family.predicate(graph) == is_disjoint
            checked += 1
        assert checked > 20

    def test_k1_degenerate(self):
        """k=1: a single index; the promise sides are x=(1,1) vs rest."""
        params = GadgetParameters(ell=2, alpha=1, t=2, k=1)
        family = LinearMaxISFamily(params, warmup=True)
        for inputs, is_disjoint in all_promise_inputs(1, 2):
            optimum = max_weight_independent_set(family.build(inputs)).weight
            if not is_disjoint:
                assert optimum >= params.linear_high_threshold()
